"""Distributed operation of provenance queries (Section 4.8).

"DiffProv is decentralized: it never performs any global operation on
the provenance trees, and all steps are performed on a specific vertex
and its direct parent or children.  Therefore, each node in the
distributed system only stores the provenance of its local tuples.
When a node needs to invoke an operation on a vertex that is stored on
another node, only that part of the provenance tree is materialized on
demand."

This module makes that property observable: it partitions a provenance
graph by vertex location and wraps it in a view that counts, per query,
how many vertexes were materialized, which nodes were contacted, and
how many fetches crossed node boundaries — demonstrating that a tree
projection touches only the on-path fraction of the graph rather than
requiring any global materialization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..datalog.tuples import Tuple
from ..errors import ReproError
from .graph import ProvenanceGraph
from .tree import ProvenanceTree
from .vertices import Vertex

__all__ = ["DistributedQueryStats", "PartitionedProvenance"]


class DistributedQueryStats:
    """Accounting for one distributed provenance query."""

    __slots__ = (
        "vertices_fetched",
        "cross_node_fetches",
        "nodes_contacted",
        "graph_size",
    )

    def __init__(self, graph_size: int):
        self.vertices_fetched = 0
        self.cross_node_fetches = 0
        self.nodes_contacted: Set[str] = set()
        self.graph_size = graph_size

    @property
    def fetched_fraction(self) -> float:
        """Share of the global graph this query materialized."""
        if not self.graph_size:
            return 0.0
        return self.vertices_fetched / self.graph_size

    def __repr__(self):
        return (
            f"DistributedQueryStats({self.vertices_fetched}/{self.graph_size} "
            f"vertexes, {self.cross_node_fetches} cross-node, "
            f"{len(self.nodes_contacted)} nodes)"
        )


class PartitionedProvenance:
    """A provenance graph partitioned by vertex location.

    Exposes the read interface tree projection needs (``children``,
    ``exist_at``, ``derivations``, ``vertices``) while tracking which
    partitions each query touches.  Fetches are memoized per query, as
    a real implementation would cache materialized remote vertexes.
    """

    def __init__(self, graph: ProvenanceGraph):
        self._graph = graph
        self.partitions: Dict[str, List[Vertex]] = {}
        for vertex in graph.vertices:
            self.partitions.setdefault(vertex.node, []).append(vertex)
        self._stats: Optional[DistributedQueryStats] = None
        self._fetched: Set[int] = set()

    # -- partition inspection ------------------------------------------------

    def nodes(self) -> List[str]:
        return sorted(self.partitions)

    def partition_sizes(self) -> Dict[str, int]:
        return {node: len(vertices) for node, vertices in self.partitions.items()}

    # -- graph interface (with accounting) -------------------------------------

    @property
    def derivations(self):
        return self._graph.derivations

    @property
    def vertices(self):
        return self._graph.vertices

    def exist_at(self, tup: Tuple, time=None):
        vertex = self._graph.exist_at(tup, time)
        if vertex is not None:
            self._fetch(vertex, origin=None)
        return vertex

    def children(self, vertex: Vertex):
        children = self._graph.children(vertex)
        for child in children:
            self._fetch(child, origin=vertex.node)
        return children

    def _fetch(self, vertex: Vertex, origin: Optional[str]) -> None:
        if self._stats is None:
            return
        if vertex.id in self._fetched:
            return
        self._fetched.add(vertex.id)
        self._stats.vertices_fetched += 1
        self._stats.nodes_contacted.add(vertex.node)
        if origin is not None and origin != vertex.node:
            self._stats.cross_node_fetches += 1

    # -- queries -----------------------------------------------------------------

    def query(self, event: Tuple, time=None):
        """A provenance query over the partitioned store.

        Returns ``(tree, stats)``: the same tree a monolithic graph
        produces, plus the distribution accounting.
        """
        self._stats = DistributedQueryStats(len(self._graph))
        self._fetched = set()
        try:
            root = self._graph.exist_at(event, time)
            if root is None:
                raise ReproError(f"event {event} was never observed")
            self._fetch(root, origin=None)
            tree = ProvenanceTree(self, root)
            return tree, self._stats
        finally:
            stats = self._stats
            self._stats = None
            self._fetched = set()
