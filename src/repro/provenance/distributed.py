"""Distributed operation of provenance queries (Section 4.8).

"DiffProv is decentralized: it never performs any global operation on
the provenance trees, and all steps are performed on a specific vertex
and its direct parent or children.  Therefore, each node in the
distributed system only stores the provenance of its local tuples.
When a node needs to invoke an operation on a vertex that is stored on
another node, only that part of the provenance tree is materialized on
demand."

This module makes that property observable: it partitions a provenance
graph by vertex location and wraps it in a view that counts, per query,
how many vertexes were materialized, which nodes were contacted, and
how many fetches crossed node boundaries — demonstrating that a tree
projection touches only the on-path fraction of the graph rather than
requiring any global materialization.

With a :class:`~repro.faults.FaultInjector` attached, remote fetches
become fallible: each cross-node fetch may time out and is retried a
bounded number of times with deterministic exponential backoff (all
counted in :class:`DistributedQueryStats`).  A subtree whose partition
stays unreachable is omitted from the projected tree and reported as
missing — the query degrades instead of failing, unless the *root*
itself is unreachable (:class:`~repro.errors.NodeUnreachableError`).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Set, Tuple as PyTuple

from ..datalog.tuples import Tuple
from ..errors import DegradedResultWarning, NodeUnreachableError, ReproError
from ..observability import active as _active_telemetry
from .graph import ProvenanceGraph
from .tree import ProvenanceTree
from .vertices import Vertex

__all__ = ["DistributedQueryStats", "PartitionedProvenance"]


class DistributedQueryStats:
    """Accounting for one distributed provenance query."""

    __slots__ = (
        "vertices_fetched",
        "cross_node_fetches",
        "nodes_contacted",
        "graph_size",
        "fetch_attempts",
        "timeouts",
        "retries",
        "backoff_steps",
        "failed_fetches",
        "unreachable_nodes",
        "missing_subtrees",
    )

    def __init__(self, graph_size: int):
        self.vertices_fetched = 0
        self.cross_node_fetches = 0
        self.nodes_contacted: Set[str] = set()
        self.graph_size = graph_size
        # Fault accounting (all zero on a reliable substrate).
        self.fetch_attempts = 0
        self.timeouts = 0
        self.retries = 0
        self.backoff_steps = 0
        self.failed_fetches = 0
        self.unreachable_nodes: Set[str] = set()
        self.missing_subtrees: List[PyTuple[Tuple, Tuple]] = []

    @property
    def fetched_fraction(self) -> float:
        """Share of the global graph this query materialized."""
        if not self.graph_size:
            return 0.0
        return self.vertices_fetched / self.graph_size

    @property
    def degraded(self) -> bool:
        """True when at least one subtree could not be materialized."""
        return self.failed_fetches > 0

    def __repr__(self):
        text = (
            f"DistributedQueryStats({self.vertices_fetched}/{self.graph_size} "
            f"vertexes, {self.cross_node_fetches} cross-node, "
            f"{len(self.nodes_contacted)} nodes"
        )
        if self.degraded or self.timeouts or self.retries:
            text += (
                f", {self.timeouts} timeouts, {self.retries} retries, "
                f"{self.failed_fetches} failed"
            )
        return text + ")"


class PartitionedProvenance:
    """A provenance graph partitioned by vertex location.

    Exposes the read interface tree projection needs (``children``,
    ``exist_at``, ``derivations``, ``vertices``) while tracking which
    partitions each query touches.  Fetches are memoized per query, as
    a real implementation would cache materialized remote vertexes.

    ``faults`` (a FaultInjector) makes remote fetches fallible; a fetch
    against a vertex on the querying node itself never fails.  The
    retry budget and per-attempt timeout default to the plan's values.
    """

    def __init__(
        self,
        graph: ProvenanceGraph,
        faults=None,
        max_retries: Optional[int] = None,
        timeout_steps: Optional[int] = None,
        telemetry=None,
        deadline=None,
    ):
        self._graph = graph
        self.faults = faults
        self.telemetry = _active_telemetry(telemetry)
        # Optional repro.resilience.Deadline: checked once per remote
        # fetch, so a fetch storm cannot outlive the diagnosis budget.
        self.deadline = deadline
        plan = faults.plan if faults is not None else None
        self.max_retries = (
            max_retries
            if max_retries is not None
            else (plan.max_retries if plan is not None else 2)
        )
        self.timeout_steps = (
            timeout_steps
            if timeout_steps is not None
            else (plan.timeout_steps if plan is not None else 1)
        )
        self._partitions: Optional[Dict[str, List[Vertex]]] = None
        self._stats: Optional[DistributedQueryStats] = None
        self._fetched: Set[int] = set()
        self._failed: Set[int] = set()

    # -- partition inspection ------------------------------------------------

    @property
    def partitions(self) -> Dict[str, List[Vertex]]:
        """Vertexes by owning node (built lazily — queries don't need it)."""
        if self._partitions is None:
            self._partitions = {}
            for vertex in self._graph.vertices:
                self._partitions.setdefault(vertex.node, []).append(vertex)
        return self._partitions

    def nodes(self) -> List[str]:
        return sorted(self.partitions)

    def partition_sizes(self) -> Dict[str, int]:
        return {node: len(vertices) for node, vertices in self.partitions.items()}

    # -- graph interface (with accounting) -------------------------------------

    @property
    def derivations(self):
        return self._graph.derivations

    @property
    def vertices(self):
        return self._graph.vertices

    def exist_at(self, tup: Tuple, time=None):
        vertex = self._graph.exist_at(tup, time)
        if vertex is not None:
            self._fetch(vertex, origin=None)
        return vertex

    def children(self, vertex: Vertex):
        children = self._graph.children(vertex)
        kept = []
        for child in children:
            if self._fetch(child, origin=vertex.node):
                kept.append(child)
            elif self._stats is not None:
                self._stats.missing_subtrees.append(
                    (vertex.tuple, child.tuple)
                )
        return kept

    def _fetch(self, vertex: Vertex, origin: Optional[str]) -> bool:
        """Materialize a vertex; False when its partition is unreachable."""
        if self._stats is None:
            return True
        if vertex.id in self._fetched:
            return True
        if vertex.id in self._failed:
            return False
        if self.deadline is not None:
            self.deadline.check("distributed.fetch")
        telemetry = self.telemetry
        if not self._attempt_fetch(vertex, origin):
            self._failed.add(vertex.id)
            self._stats.failed_fetches += 1
            self._stats.unreachable_nodes.add(vertex.node)
            if telemetry is not None:
                telemetry.inc("distributed.failed_fetches")
            return False
        self._fetched.add(vertex.id)
        self._stats.vertices_fetched += 1
        self._stats.nodes_contacted.add(vertex.node)
        if telemetry is not None:
            telemetry.inc("distributed.fetches")
        if origin is not None and origin != vertex.node:
            self._stats.cross_node_fetches += 1
            if telemetry is not None:
                telemetry.inc("distributed.cross_node_fetches")
        return True

    def _attempt_fetch(self, vertex: Vertex, origin: Optional[str]) -> bool:
        """Bounded retry with deterministic exponential backoff."""
        if self.faults is None:
            return True
        if origin is not None and origin == vertex.node:
            # Local read: no network involved.
            return True
        telemetry = self.telemetry
        for attempt in range(self.max_retries + 1):
            if attempt:
                self._stats.retries += 1
                self._stats.backoff_steps += 2 ** (attempt - 1)
            self._stats.fetch_attempts += 1
            if self.faults.fetch_ok(vertex.node):
                if telemetry is not None:
                    telemetry.observe("distributed.fetch_attempts", attempt + 1)
                return True
            self._stats.timeouts += self.timeout_steps
            if telemetry is not None:
                telemetry.inc("distributed.timeouts")
        if telemetry is not None:
            telemetry.observe(
                "distributed.fetch_attempts", self.max_retries + 1
            )
        return False

    # -- queries -----------------------------------------------------------------

    def query(self, event: Tuple, time=None):
        """A provenance query over the partitioned store.

        Returns ``(tree, stats)``: the same tree a monolithic graph
        produces (minus unreachable subtrees), plus the distribution
        accounting.  Raises :class:`NodeUnreachableError` only when the
        root vertex itself cannot be fetched; missing interior subtrees
        degrade the tree and emit a :class:`DegradedResultWarning`.
        """
        # len(vertices) rather than len(graph): graph views that proxy
        # attribute access (sdn.emulation) don't forward __len__.
        self._stats = DistributedQueryStats(len(self._graph.vertices))
        self._fetched = set()
        self._failed = set()
        try:
            root = self._graph.exist_at(event, time)
            if root is None:
                raise ReproError(
                    f"event {event} was never observed"
                    + (f" at time {time}" if time is not None else "")
                )
            # The query originates on the node that observed the event,
            # so the root is a local read — but if that whole node is
            # marked unreachable, the query cannot even start.
            if self.faults is not None and not self.faults.node_reachable(
                root.node
            ):
                self._stats.failed_fetches += 1
                self._stats.unreachable_nodes.add(root.node)
                raise NodeUnreachableError(
                    root.node,
                    f"provenance root for {event} lives on unreachable "
                    f"node {root.node!r}",
                    stats=self._stats,
                )
            self._fetch(root, origin=root.node)
            tree = ProvenanceTree(self, root)
            stats = self._stats
            if stats.degraded:
                warnings.warn(
                    DegradedResultWarning(
                        f"provenance query for {event} is missing "
                        f"{stats.failed_fetches} subtree(s) from "
                        f"{sorted(stats.unreachable_nodes)}"
                    ),
                    stacklevel=2,
                )
            return tree, stats
        finally:
            self._stats = None
            self._fetched = set()
            self._failed = set()
