"""Append-only storage for the temporal provenance graph.

The graph has a vertex for each event and an edge from each effect to
its direct causes.  Tuple deletions are modelled as insertions of
"negative" vertexes (DELETE/UNDERIVE/DISAPPEAR), so the graph only ever
grows — which is what lets it "remember" past events and serve
reference events from the past (Section 3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple as PyTuple

from ..datalog.tuples import Tuple
from ..errors import ReproError
from .vertices import Vertex, VertexKind

__all__ = ["DerivationInfo", "ProvenanceGraph"]


class DerivationInfo:
    """What the graph remembers about one rule firing."""

    __slots__ = ("id", "rule_name", "head", "body", "env", "trigger_index", "time")

    def __init__(
        self,
        id: int,
        rule_name: str,
        head: Tuple,
        body: PyTuple,
        env: Dict[str, object],
        trigger_index: int,
        time: int,
    ):
        self.id = id
        self.rule_name = rule_name
        self.head = head
        self.body = tuple(body)
        self.env = dict(env)
        self.trigger_index = trigger_index
        self.time = time

    @property
    def trigger(self) -> Tuple:
        return self.body[self.trigger_index]

    def __repr__(self):
        return f"DerivationInfo(#{self.id} {self.rule_name}: {self.head})"


class ProvenanceGraph:
    """Vertexes, effect→cause edges, and lookup indices."""

    def __init__(self):
        self.vertices: List[Vertex] = []
        self._edges: Dict[int, PyTuple[int, ...]] = {}
        self.derivations: Dict[int, DerivationInfo] = {}
        self._exists_by_tuple: Dict[Tuple, List[Vertex]] = {}
        self._appears_by_tuple: Dict[Tuple, List[Vertex]] = {}
        self._inserts_by_tuple: Dict[Tuple, List[Vertex]] = {}
        self._derive_by_derivation: Dict[int, Vertex] = {}

    def __len__(self) -> int:
        return len(self.vertices)

    # -- construction ----------------------------------------------------------

    def add_vertex(
        self,
        kind: VertexKind,
        node: str,
        tup: Tuple,
        time: int,
        children: Iterable[Vertex] = (),
        end_time: Optional[int] = None,
        rule: Optional[str] = None,
        derivation_id: Optional[int] = None,
        mutable: Optional[bool] = None,
    ) -> Vertex:
        vertex = Vertex(
            len(self.vertices),
            kind,
            node,
            tup,
            time,
            end_time=end_time,
            rule=rule,
            derivation_id=derivation_id,
            mutable=mutable,
        )
        self.vertices.append(vertex)
        self._edges[vertex.id] = tuple(child.id for child in children)
        if kind == VertexKind.EXIST:
            self._exists_by_tuple.setdefault(tup, []).append(vertex)
        elif kind == VertexKind.APPEAR:
            self._appears_by_tuple.setdefault(tup, []).append(vertex)
        elif kind == VertexKind.INSERT:
            self._inserts_by_tuple.setdefault(tup, []).append(vertex)
        elif kind == VertexKind.DERIVE and derivation_id is not None:
            self._derive_by_derivation[derivation_id] = vertex
        return vertex

    def add_derivation(self, info: DerivationInfo) -> None:
        if info.id in self.derivations:
            raise ReproError(f"duplicate derivation id {info.id}")
        self.derivations[info.id] = info

    def set_children(self, vertex: Vertex, children: Iterable[Vertex]) -> None:
        self._edges[vertex.id] = tuple(child.id for child in children)

    # -- lookups ---------------------------------------------------------------

    def children(self, vertex: Vertex) -> List[Vertex]:
        return [self.vertices[i] for i in self._edges.get(vertex.id, ())]

    def derive_vertex(self, derivation_id: int) -> Optional[Vertex]:
        return self._derive_by_derivation.get(derivation_id)

    def exists_of(self, tup: Tuple) -> List[Vertex]:
        return list(self._exists_by_tuple.get(tup, ()))

    def appears_of(self, tup: Tuple) -> List[Vertex]:
        return list(self._appears_by_tuple.get(tup, ()))

    def inserts_of(self, tup: Tuple) -> List[Vertex]:
        return list(self._inserts_by_tuple.get(tup, ()))

    def exist_at(self, tup: Tuple, time: Optional[int] = None) -> Optional[Vertex]:
        """The EXIST vertex of a tuple at an instant (default: latest).

        Among the tuple's EXIST intervals, returns the latest one that
        starts no later than ``time`` and has not ended before it.
        """
        candidates = self._exists_by_tuple.get(tup, ())
        best = None
        for vertex in candidates:
            if time is not None:
                if vertex.time > time:
                    continue
                if vertex.end_time is not None and vertex.end_time < time:
                    continue
            if best is None or vertex.time > best.time:
                best = vertex
        return best

    def latest_open_exist(self, tup: Tuple) -> Optional[Vertex]:
        candidates = [v for v in self._exists_by_tuple.get(tup, ()) if v.is_open]
        if not candidates:
            return None
        return max(candidates, key=lambda v: v.time)

    def close_exist(self, tup: Tuple, time: int) -> Optional[Vertex]:
        vertex = self.latest_open_exist(tup)
        if vertex is not None:
            vertex.end_time = time
        return vertex

    def latest_insert(self, tup: Tuple) -> Optional[Vertex]:
        candidates = self._inserts_by_tuple.get(tup, ())
        if not candidates:
            return None
        return max(candidates, key=lambda v: v.time)

    def appear_times(self, tup: Tuple) -> List[int]:
        """Times at which a tuple appeared (cheap twin of appears_of)."""
        return [v.time for v in self._appears_by_tuple.get(tup, ())]

    def ever_existed(self, tup: Tuple) -> bool:
        """Whether the tuple ever had an EXIST interval.

        Equivalent to ``exist_at(tup) is not None``; kept separate so
        callers that only need existence stay on the cheap-query
        surface a :class:`repro.provenance.lazy.LazyProvenanceGraph`
        answers without reconstruction.
        """
        return bool(self._exists_by_tuple.get(tup))

    def alive_at(self, tup: Tuple, time: int) -> bool:
        return self.exist_at(tup, time) is not None

    def alive_during(self, tup: Tuple, from_time: int) -> bool:
        """Whether any EXIST interval of ``tup`` touches [from_time, ∞).

        This is the "as of the time at which the missing tuple would
        have had to exist" check of Section 4.8: a flow entry that
        expired *before* the bad event counts as missing even though it
        existed in the past.
        """
        for vertex in self._exists_by_tuple.get(tup, ()):
            if vertex.end_time is None or vertex.end_time >= from_time:
                return True
        return False

    def live_tuples(self, table: Optional[str] = None) -> List[Tuple]:
        """Tuples with an open EXIST interval (optionally by table)."""
        result = []
        for tup, vertices in self._exists_by_tuple.items():
            if table is not None and tup.table != table:
                continue
            if any(v.is_open for v in vertices):
                result.append(tup)
        return result

    def history(self, tup: Tuple) -> List[Vertex]:
        """Every vertex mentioning a tuple, in time order.

        An operator's view of one tuple's life: INSERT/APPEAR/EXIST
        intervals and the DELETE/UNDERIVE/DISAPPEAR events between them
        — e.g. the flap timeline of a route that keeps being withdrawn
        and re-announced.
        """
        vertices = [v for v in self.vertices if v.tuple == tup]
        vertices.sort(key=lambda v: (v.time, v.id))
        return vertices

    def stats(self) -> Dict[str, int]:
        """Vertex counts by kind (used by storage-cost benchmarks)."""
        counts: Dict[str, int] = {}
        for vertex in self.vertices:
            counts[vertex.kind.value] = counts.get(vertex.kind.value, 0) + 1
        return counts
