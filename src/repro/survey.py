"""The Outages mailing-list survey of Section 2.4.

The paper reviews the 89 posts of 09/2014–12/2014: 64 are network
diagnosis scenarios, 45 of those (70.3%) contain both a fault and at
least one reference event, 10 of the 45 references lie in another
administrative domain (leaving 35 usable in-domain), and the 45 break
down into partial, sudden, and intermittent failures with partial
failures most prevalent.

The original posts are not redistributable, so this module ships the
*label distribution* as a synthetic corpus of post records with the
paper's ground truth, plus the analysis that derives every statistic
the section reports.  The reference-finding strategies ("look back in
time" vs. "look at a sibling system") are encoded per post as well.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["SurveyPost", "SurveyStats", "build_corpus", "analyze", "paper_stats"]

CATEGORIES = ("partial", "sudden", "intermittent")
STRATEGIES = ("look-back-in-time", "sibling-system")

# The distribution reported in Section 2.4.
TOTAL_POSTS = 89
DIAGNOSTIC_POSTS = 64
WITH_REFERENCE = 45
CROSS_DOMAIN_REFERENCES = 10

# "The most prevalent problems were partial failures"; the paper gives
# the examples but not exact per-category counts, so the corpus uses a
# partial-heavy split that sums to 45.
CATEGORY_COUNTS = {"partial": 23, "sudden": 12, "intermittent": 10}

_EXAMPLES = {
    "partial": (
        "a batch of DNS servers contained expired entries, while records "
        "on other servers were up to date"
    ),
    "sudden": (
        "a service's status suddenly changed from 'Service OK' to "
        "'Internal Server Error'"
    ),
    "intermittent": (
        "diagnostic queries sometimes succeeded, sometimes failed "
        "silently, and sometimes took an extremely long time"
    ),
}


@dataclass
class SurveyPost:
    """One mailing-list post with the survey's ground-truth labels."""

    post_id: int
    month: str
    is_diagnostic: bool
    has_reference: bool = False
    cross_domain: bool = False
    category: str = ""
    strategy: str = ""
    excerpt: str = ""


@dataclass
class SurveyStats:
    """Every number Section 2.4 reports."""

    total: int = 0
    diagnostic: int = 0
    with_reference: int = 0
    cross_domain: int = 0
    in_domain: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    by_strategy: Dict[str, int] = field(default_factory=dict)

    @property
    def reference_fraction(self) -> float:
        """References among diagnostic posts (the paper's 70.3%)."""
        if not self.diagnostic:
            return 0.0
        return self.with_reference / self.diagnostic


def build_corpus(seed: int = 2016) -> List[SurveyPost]:
    """The synthetic 89-post corpus with the paper's label counts."""
    rng = random.Random(seed)
    months = ["2014-09", "2014-10", "2014-11", "2014-12"]
    posts: List[SurveyPost] = []
    labels: List[dict] = []
    for category, count in CATEGORY_COUNTS.items():
        for _ in range(count):
            labels.append({"category": category})
    for index, label in enumerate(labels):
        label["cross_domain"] = index < CROSS_DOMAIN_REFERENCES
    rng.shuffle(labels)
    # 45 diagnostic posts with references.
    for label in labels:
        posts.append(
            SurveyPost(
                post_id=0,
                month=rng.choice(months),
                is_diagnostic=True,
                has_reference=True,
                cross_domain=label["cross_domain"],
                category=label["category"],
                strategy=rng.choice(STRATEGIES),
                excerpt=_EXAMPLES[label["category"]],
            )
        )
    # 19 diagnostic posts without a reference event.
    for _ in range(DIAGNOSTIC_POSTS - WITH_REFERENCE):
        posts.append(
            SurveyPost(
                post_id=0,
                month=rng.choice(months),
                is_diagnostic=True,
                excerpt="a fault with no working counterpart mentioned",
            )
        )
    # 25 non-diagnostic posts (complaints, news reports, etc.).
    for _ in range(TOTAL_POSTS - DIAGNOSTIC_POSTS):
        posts.append(
            SurveyPost(
                post_id=0,
                month=rng.choice(months),
                is_diagnostic=False,
                excerpt="complaints about a particular iOS version",
            )
        )
    rng.shuffle(posts)
    for index, post in enumerate(posts, start=1):
        post.post_id = index
    return posts


def analyze(posts: List[SurveyPost]) -> SurveyStats:
    """Derive the Section 2.4 statistics from a labelled corpus."""
    stats = SurveyStats()
    stats.total = len(posts)
    for post in posts:
        if not post.is_diagnostic:
            continue
        stats.diagnostic += 1
        if not post.has_reference:
            continue
        stats.with_reference += 1
        if post.cross_domain:
            stats.cross_domain += 1
        stats.by_category[post.category] = (
            stats.by_category.get(post.category, 0) + 1
        )
        stats.by_strategy[post.strategy] = (
            stats.by_strategy.get(post.strategy, 0) + 1
        )
    stats.in_domain = stats.with_reference - stats.cross_domain
    return stats


def paper_stats() -> SurveyStats:
    """The statistics exactly as the paper reports them."""
    return analyze(build_corpus())
