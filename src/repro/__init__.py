"""repro — a reproduction of "The Good, the Bad, and the Differences:
Better Network Diagnostics with Differential Provenance" (SIGCOMM 2016).

The package layers, bottom to top:

- :mod:`repro.datalog` — an NDlog engine (the RapidNet stand-in);
- :mod:`repro.provenance` — the temporal provenance graph, recorders
  for inferred / reported / external-specification modes, and the
  naive tree-diff baselines;
- :mod:`repro.replay` — base-event logging, deterministic replay,
  checkpoints;
- :mod:`repro.observability` — the metrics registry and span-tree
  tracing threaded through all of the above (docs/observability.md);
- :mod:`repro.core` — the DiffProv algorithm itself;
- :mod:`repro.sdn`, :mod:`repro.mapreduce` — the two evaluation
  substrates (declarative OpenFlow model + black-box emulator, and the
  instrumented WordCount runtime);
- :mod:`repro.scenarios` — the paper's diagnostic scenarios;
- :mod:`repro.survey` — the Section 2.4 Outages survey.

Quickstart::

    from repro import DiffProv, Execution
    from repro.datalog import parse_program, parse_tuple

    program = parse_program(...)
    execution = Execution(program)
    ...
    report = DiffProv(program).diagnose(execution, execution, good, bad)
    print(report.summary())
"""

from .addresses import IPv4Address, Prefix, ip, prefix
from .core import DiffProv, DiffProvOptions, DiagnosisReport
from .datalog import Engine, Tuple, parse_program, parse_rule, parse_tuple
from .errors import (
    DegradedResultWarning,
    DiagnosisFailure,
    FaultError,
    FaultSpecError,
    ImmutableChangeRequired,
    NodeUnreachableError,
    NonInvertibleError,
    ParseError,
    ReproError,
    SeedTypeMismatch,
    StepLimitExceeded,
)
from .faults import FaultInjector, FaultPlan
from .observability import (
    ManualClock,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    Tracer,
)
from .provenance import (
    ProvenanceGraph,
    ProvenanceRecorder,
    ProvenanceTree,
    naive_diff,
    provenance_query,
    tree_edit_distance,
)
from .replay import Change, Checkpointer, EventLog, Execution

__version__ = "1.0.0"

__all__ = [
    "IPv4Address",
    "Prefix",
    "ip",
    "prefix",
    "DiffProv",
    "DiffProvOptions",
    "DiagnosisReport",
    "Engine",
    "Tuple",
    "parse_program",
    "parse_rule",
    "parse_tuple",
    "ReproError",
    "ParseError",
    "DiagnosisFailure",
    "SeedTypeMismatch",
    "ImmutableChangeRequired",
    "NonInvertibleError",
    "StepLimitExceeded",
    "FaultError",
    "FaultSpecError",
    "NodeUnreachableError",
    "DegradedResultWarning",
    "FaultPlan",
    "FaultInjector",
    "Telemetry",
    "NullTelemetry",
    "ManualClock",
    "MetricsRegistry",
    "Tracer",
    "ProvenanceGraph",
    "ProvenanceRecorder",
    "ProvenanceTree",
    "provenance_query",
    "naive_diff",
    "tree_edit_distance",
    "Change",
    "Checkpointer",
    "EventLog",
    "Execution",
    "__version__",
]
