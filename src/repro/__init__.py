"""repro — a reproduction of "The Good, the Bad, and the Differences:
Better Network Diagnostics with Differential Provenance" (SIGCOMM 2016).

The package layers, bottom to top:

- :mod:`repro.datalog` — an NDlog engine (the RapidNet stand-in);
- :mod:`repro.provenance` — the temporal provenance graph, recorders
  for inferred / reported / external-specification modes, and the
  naive tree-diff baselines;
- :mod:`repro.replay` — base-event logging, deterministic replay,
  checkpoints;
- :mod:`repro.observability` — the metrics registry and span-tree
  tracing threaded through all of the above (docs/observability.md);
- :mod:`repro.core` — the DiffProv algorithm itself;
- :mod:`repro.sdn`, :mod:`repro.mapreduce` — the two evaluation
  substrates (declarative OpenFlow model + black-box emulator, and the
  instrumented WordCount runtime);
- :mod:`repro.scenarios` — the paper's diagnostic scenarios;
- :mod:`repro.survey` — the Section 2.4 Outages survey.

The stable programmatic entry point is :class:`repro.api.Session`
(re-exported here), which fronts all of the above.  Quickstart::

    from repro import Session

    session = Session(scenario="SDN1", minimize=True, workers=4)
    print(session.diagnose().summary())

    # or with your own program and executions:
    session = Session(program=program, good=execution, bad=execution,
                      good_event=good, bad_event=bad)
    report = session.diagnose()

The algorithm classes remain available from their canonical submodule
(``from repro.core import DiffProv, DiffProvOptions``); importing them
from the package top level still works but is deprecated in favour of
the facade (docs/api.md).
"""

import warnings as _warnings

from .addresses import IPv4Address, Prefix, ip, prefix
from .core import DiagnosisReport
from .datalog import (
    Engine,
    EngineConfig,
    Tuple,
    parse_program,
    parse_rule,
    parse_tuple,
)
from .errors import (
    DegradedResultWarning,
    DiagnosisFailure,
    FaultError,
    FaultSpecError,
    ImmutableChangeRequired,
    NodeUnreachableError,
    NonInvertibleError,
    ParseError,
    ReproError,
    SeedTypeMismatch,
    StepLimitExceeded,
)
from .faults import FaultInjector, FaultPlan
from .observability import (
    ManualClock,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    Tracer,
)
from .provenance import (
    ProvenanceGraph,
    ProvenanceRecorder,
    ProvenanceTree,
    naive_diff,
    provenance_query,
    tree_edit_distance,
)
from .repair import RollbackPlan, RollbackPlanner
from .replay import Change, Checkpointer, EventLog, Execution, ReplayCache
from .api import Session

__version__ = "1.0.0"

# Names still accepted at the top level but deprecated in favour of the
# Session facade; each maps to its canonical submodule home, which stays
# warning-free.
_DEPRECATED_TOP_LEVEL = {
    "DiffProv": "repro.core",
    "DiffProvOptions": "repro.core",
}


def __getattr__(name):
    home = _DEPRECATED_TOP_LEVEL.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    _warnings.warn(
        f"importing {name} from the package top level is deprecated; "
        f"use repro.api.Session, or import {name} from {home} "
        f"(see docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(home), name)

__all__ = [
    "Session",
    "IPv4Address",
    "Prefix",
    "ip",
    "prefix",
    "DiffProv",  # deprecated at this level; canonical home is repro.core
    "DiffProvOptions",  # deprecated at this level; canonical home is repro.core
    "DiagnosisReport",
    "Engine",
    "EngineConfig",
    "Tuple",
    "parse_program",
    "parse_rule",
    "parse_tuple",
    "ReproError",
    "ParseError",
    "DiagnosisFailure",
    "SeedTypeMismatch",
    "ImmutableChangeRequired",
    "NonInvertibleError",
    "StepLimitExceeded",
    "FaultError",
    "FaultSpecError",
    "NodeUnreachableError",
    "DegradedResultWarning",
    "FaultPlan",
    "FaultInjector",
    "Telemetry",
    "NullTelemetry",
    "ManualClock",
    "MetricsRegistry",
    "Tracer",
    "ProvenanceGraph",
    "ProvenanceRecorder",
    "ProvenanceTree",
    "provenance_query",
    "naive_diff",
    "tree_edit_distance",
    "RollbackPlan",
    "RollbackPlanner",
    "Change",
    "Checkpointer",
    "EventLog",
    "Execution",
    "ReplayCache",
    "__version__",
]
