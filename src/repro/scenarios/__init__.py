"""Diagnostic scenarios (Section 6.2).

Four SDN scenarios and four MapReduce scenarios, each an executable
reconstruction of a realistic bug, plus the Section 6.7 complex-network
scenario.  Every scenario exposes a good and a bad event and can be
diagnosed with DiffProv or with the baselines.
"""

from .base import Scenario
from .sdn1 import SDN1BrokenFlowEntry, SDN1LossyProvenance
from .sdn2 import SDN2MultiControllerInconsistency
from .sdn3 import SDN3UnexpectedRuleExpiration
from .sdn4 import SDN4MultipleFaultyEntries
from .mr import (
    MR1DeclarativeConfigChange,
    MR2DeclarativeCodeChange,
    MR1ImperativeConfigChange,
    MR2ImperativeCodeChange,
)
from .stanford import StanfordForwardingError
from .dns import DNSStaleReplica
from .flap import FlappingRoute, FlappingRouteStream
from .controller import SDN1WithController, SDN2WithController

ALL_SCENARIOS = {
    "SDN1": SDN1BrokenFlowEntry,
    "SDN2": SDN2MultiControllerInconsistency,
    "SDN3": SDN3UnexpectedRuleExpiration,
    "SDN4": SDN4MultipleFaultyEntries,
    "MR1-D": MR1DeclarativeConfigChange,
    "MR2-D": MR2DeclarativeCodeChange,
    "MR1-I": MR1ImperativeConfigChange,
    "MR2-I": MR2ImperativeCodeChange,
    "DNS": DNSStaleReplica,
    "FLAP": FlappingRoute,
    "FLAP-S": FlappingRouteStream,
    "SDN1-C": SDN1WithController,
    "SDN2-C": SDN2WithController,
    "SDN1-F": SDN1LossyProvenance,
}

__all__ = [
    "Scenario",
    "SDN1BrokenFlowEntry",
    "SDN1LossyProvenance",
    "SDN2MultiControllerInconsistency",
    "SDN3UnexpectedRuleExpiration",
    "SDN4MultipleFaultyEntries",
    "MR1DeclarativeConfigChange",
    "MR2DeclarativeCodeChange",
    "MR1ImperativeConfigChange",
    "MR2ImperativeCodeChange",
    "StanfordForwardingError",
    "DNSStaleReplica",
    "FlappingRoute",
    "FlappingRouteStream",
    "SDN1WithController",
    "SDN2WithController",
    "ALL_SCENARIOS",
]
