"""SDN4: multiple faulty entries on consecutive hops.

SDN1 extended with a larger topology and *two* overly specific flow
entries, on S2 and S3.  Fixing the first fault lets the packet travel
one hop further before the second fault misroutes it again, so DiffProv
needs two roll-back/roll-forward rounds, each pinpointing one entry
(the ``1/1`` column of Table 1).
"""

from __future__ import annotations

from ..addresses import Prefix
from ..replay.execution import Execution
from ..sdn import model
from ..sdn.topology import Topology
from ..sdn.traces import TraceConfig, synthetic_trace
from .base import Scenario

__all__ = ["SDN4MultipleFaultyEntries"]

MIRROR_GROUP = -1


class SDN4MultipleFaultyEntries(Scenario):
    name = "SDN4"
    description = "Two overly specific entries on consecutive hops (S2, S3)"

    GOOD_SRC = "4.3.2.1"
    BAD_SRC = "4.3.3.1"
    SERVICE_DST = "172.16.0.80"

    def build(self) -> None:
        background = self.params.get("background_packets", 30)
        topo = Topology("sdn4")
        for name in ("s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"):
            topo.add_switch(name)
        topo.add_host("web1", "172.16.0.1")
        topo.add_host("web2", "172.16.0.2")
        topo.add_host("dpi", "172.16.0.9")
        # Untrusted path: s1 - s2 - s3 - s8 (web1 + dpi).
        topo.add_link("s1", "s2")
        topo.add_link("s2", "s3")
        topo.add_link("s3", "s8")
        topo.add_link("s8", "web1")
        topo.add_link("s8", "dpi")
        # General path: s2 - s4 - s5 - s6 - s7 (web2), plus the detour
        # taken when the *second* fault misroutes at s3 (s3 - s5).
        topo.add_link("s2", "s4")
        topo.add_link("s4", "s5")
        topo.add_link("s5", "s6")
        topo.add_link("s6", "s7")
        topo.add_link("s7", "web2")
        topo.add_link("s3", "s5")
        self.topology = topo

        self.program = model.sdn_program()
        execution = Execution(self.program, name="sdn4")
        for tup in topo.wiring_tuples():
            execution.insert(tup, mutable=False)
        any_pfx = Prefix("0.0.0.0/0")
        broken = Prefix("4.3.2.0/24")  # should be 4.3.2.0/23, twice
        entries = [
            model.flow_entry("s1", 1, any_pfx, any_pfx, topo.port("s1", "s2")),
            model.flow_entry("s2", 10, broken, any_pfx, topo.port("s2", "s3")),
            model.flow_entry("s2", 1, any_pfx, any_pfx, topo.port("s2", "s4")),
            model.flow_entry("s3", 10, broken, any_pfx, topo.port("s3", "s8")),
            model.flow_entry("s3", 1, any_pfx, any_pfx, topo.port("s3", "s5")),
            model.flow_entry("s4", 1, any_pfx, any_pfx, topo.port("s4", "s5")),
            model.flow_entry("s5", 1, any_pfx, any_pfx, topo.port("s5", "s6")),
            model.flow_entry("s6", 1, any_pfx, any_pfx, topo.port("s6", "s7")),
            model.flow_entry("s7", 1, any_pfx, any_pfx, topo.port("s7", "web2")),
            model.flow_entry("s8", 1, any_pfx, any_pfx, MIRROR_GROUP),
        ]
        for entry in entries:
            execution.insert(entry, mutable=True)
        execution.insert(
            model.group_entry("s8", MIRROR_GROUP, topo.port("s8", "web1")),
            mutable=True,
        )
        execution.insert(
            model.group_entry("s8", MIRROR_GROUP, topo.port("s8", "dpi")),
            mutable=True,
        )

        pkt_id = 0
        trace = synthetic_trace(
            TraceConfig(
                count=background,
                src_prefixes=("10.0.0.0/8",),
                dst_prefixes=("172.16.0.0/24",),
                seed=13,
            )
        )
        for trace_packet in trace:
            pkt_id += 1
            execution.insert(
                model.packet("s1", pkt_id, trace_packet.src, trace_packet.dst),
                mutable=False,
            )
        pkt_id += 1
        self.good_pkt = pkt_id
        execution.insert(
            model.packet("s1", pkt_id, self.GOOD_SRC, self.SERVICE_DST),
            mutable=False,
        )
        pkt_id += 1
        self.bad_pkt = pkt_id
        execution.insert(
            model.packet("s1", pkt_id, self.BAD_SRC, self.SERVICE_DST),
            mutable=False,
        )

        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = model.delivered(
            "web1", self.good_pkt, self.GOOD_SRC, self.SERVICE_DST
        )
        self.bad_event = model.delivered(
            "web2", self.bad_pkt, self.BAD_SRC, self.SERVICE_DST
        )
