"""DNS partial failure: stale records on some replicas (Section 2.4).

The most prevalent problem class in the paper's Outages survey is the
partial failure, and its flagship example is DNS: "a batch of DNS
servers contained expired entries, while records on other servers were
up to date".  This scenario models a zone served by several replicas
that load their records from zone transfers; two replicas are stuck on
an old zone serial, so they answer queries with the outdated address.

The reference event is a query answered correctly by an up-to-date
replica — the "different system or service that coexists with the
malfunctioning system" strategy.  DiffProv's diagnosis is the stale
replica's zone-transfer state: ``transferred(ns-a, zone, 1) ->
transferred(ns-a, zone, 2)``.

This scenario also demonstrates that nothing in the debugger is
SDN-specific: the same algorithm runs over any NDlog-modelled system.
"""

from __future__ import annotations

from ..addresses import IPv4Address
from ..datalog.parser import parse_program
from ..datalog.tuples import Tuple
from ..replay.execution import Execution
from .base import Scenario

__all__ = ["DNSStaleReplica", "dns_program", "DNS_PROGRAM_TEXT"]

DNS_PROGRAM_TEXT = """
// A query arriving at a replica (immutable: clients are not ours).
table query(Srv, QId, Name) event immutable.
// The publisher's zone content, versioned by serial (immutable data).
table zoneRecord(Zone, Serial, Name, Addr) immutable.
// Which serial each replica has transferred (mutable operator state).
table transferred(Srv, Zone, Serial) mutable.
// Records a replica can serve, and the answers it gives.
table served(Srv, Name, Addr, Serial).
table response(Srv, QId, Name, Addr).

load served(Srv, Name, Addr, Serial) :- transferred(Srv, Zone, Serial),
    zoneRecord(Zone, Serial, Name, Addr).

// A replica answers from the freshest record it has for the name.
answer response(Srv, QId, Name, Addr) :- query(Srv, QId, Name),
    served(Srv, Name, Addr, Serial) argmax<Serial>.
"""

ZONE = "example.com"
OLD_ADDR = "198.51.100.10"
NEW_ADDR = "203.0.113.10"


def dns_program():
    """A fresh copy of the DNS replica program."""
    return parse_program(DNS_PROGRAM_TEXT)


def zone_record(serial: int, name: str, addr) -> Tuple:
    return Tuple("zoneRecord", [ZONE, serial, name, IPv4Address(addr)])


def transferred(server: str, serial: int) -> Tuple:
    return Tuple("transferred", [server, ZONE, serial])


def query(server: str, query_id: int, name: str) -> Tuple:
    return Tuple("query", [server, query_id, name])


def response(server: str, query_id: int, name: str, addr) -> Tuple:
    return Tuple("response", [server, query_id, name, IPv4Address(addr)])


class DNSStaleReplica(Scenario):
    name = "DNS"
    description = "Stale zone transfers on some replicas (partial failure)"

    STALE_SERVERS = ("ns-a", "ns-b")
    FRESH_SERVER = "ns-c"
    NAME = "www"

    def build(self) -> None:
        queries = self.params.get("background_queries", 12)
        self.program = dns_program()
        execution = Execution(self.program, name="dns")

        # Zone content: serial 1 is the old publication, serial 2 the
        # current one (www moved to a new address).
        for serial, addr in ((1, OLD_ADDR), (2, NEW_ADDR)):
            execution.insert(zone_record(serial, self.NAME, addr), mutable=False)
            execution.insert(
                zone_record(serial, "mail", "192.0.2.25"), mutable=False
            )
        # ns-a and ns-b are stuck on serial 1; ns-c transferred serial 2.
        for server in self.STALE_SERVERS:
            execution.insert(transferred(server, 1), mutable=True)
        execution.insert(transferred(self.FRESH_SERVER, 2), mutable=True)

        # Background queries against all replicas.
        servers = (*self.STALE_SERVERS, self.FRESH_SERVER)
        query_id = 0
        for index in range(queries):
            query_id += 1
            execution.insert(
                query(servers[index % 3], query_id, "mail"), mutable=False
            )
        # The two observations the operator compares.
        query_id += 1
        self.good_query = query_id
        execution.insert(
            query(self.FRESH_SERVER, query_id, self.NAME), mutable=False
        )
        query_id += 1
        self.bad_query = query_id
        execution.insert(
            query(self.STALE_SERVERS[0], query_id, self.NAME), mutable=False
        )

        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = response(
            self.FRESH_SERVER, self.good_query, self.NAME, NEW_ADDR
        )
        self.bad_event = response(
            self.STALE_SERVERS[0], self.bad_query, self.NAME, OLD_ADDR
        )
