"""The MapReduce scenarios (MR1 and MR2, declarative and imperative).

- **MR1** (configuration change): the user accidentally changed the
  number of reducers, so almost every word lands on a different reducer
  than in the reference job.  Root cause: ``mapreduce.job.reduces``.
- **MR2** (code change): a newly deployed mapper omits the first word
  of each line, so counts differ.  Root cause: the mapper code version,
  identified by its bytecode signature.

Each bug is evaluated against a declarative NDlog model (``-D``,
provenance inferred by the engine) and the instrumented imperative
runtime (``-I``, provenance reported by hooks).
"""

from __future__ import annotations

from ..datalog.builtins import call as builtin_call
from ..errors import ReproError
from ..mapreduce import declarative
from ..mapreduce.config import REDUCES_KEY, JobConfig
from ..mapreduce.corpus import first_word_counts, generate_corpus, word_counts
from ..mapreduce.hdfs import HDFS
from ..mapreduce.job import ImperativeMapReduceExecution
from ..mapreduce.wordcount import (
    BUGGY_MAPPER,
    CORRECT_MAPPER,
    mapper_checksum,
)
from ..replay.execution import Execution
from .base import Scenario

__all__ = [
    "MR1DeclarativeConfigChange",
    "MR2DeclarativeCodeChange",
    "MR1ImperativeConfigChange",
    "MR2ImperativeCodeChange",
]

INPUT_PATH = "/corpus/input.txt"
GOOD_JOB = "job-ref"
BAD_JOB = "job-buggy"


def _pick_query_word(text: str, good_reduces: int, bad_reduces: int) -> str:
    """A frequent word whose output record visibly shows the bug.

    For MR2 the word must open some line (so the buggy mapper changes
    its count); for MR1 its partition must move between the reference
    and the changed reducer count (the paper's "almost all words end up
    at a different reducer").
    """
    counts = word_counts(text)
    first = first_word_counts(text)
    candidates = [w for w in first if counts[w] >= 5]
    if good_reduces != bad_reduces:
        candidates = [
            w
            for w in candidates
            if builtin_call("hash_mod", [w, good_reduces])
            != builtin_call("hash_mod", [w, bad_reduces])
        ]
    if not candidates:
        raise ReproError("corpus has no suitable query word")
    return max(candidates, key=lambda w: (counts[w], w))


class _MRScenarioBase(Scenario):
    """Shared corpus construction and event selection."""

    def _make_corpus(self) -> str:
        lines = self.params.get("corpus_lines", 40)
        words_per_line = self.params.get("words_per_line", 8)
        return generate_corpus(lines=lines, words_per_line=words_per_line)

    def _events_for(
        self,
        text: str,
        good_reduces: int,
        bad_reduces: int,
        bad_mapper: str,
    ) -> None:
        """Compute the good/bad output records to query."""
        word = _pick_query_word(text, good_reduces, bad_reduces)
        self.query_word = word
        counts = word_counts(text)
        good_count = counts[word]
        if bad_mapper == CORRECT_MAPPER:
            bad_count = good_count
        else:
            bad_count = good_count - first_word_counts(text).get(word, 0)
        good_reducer = builtin_call("hash_mod", [word, good_reduces])
        bad_reducer = builtin_call("hash_mod", [word, bad_reduces])
        self.good_event = declarative.wordcount_output(
            good_reducer, GOOD_JOB, word, good_count
        )
        self.bad_event = declarative.wordcount_output(
            bad_reducer, BAD_JOB, word, bad_count
        )


class _DeclarativeMRScenario(_MRScenarioBase):
    """Runs both jobs on the NDlog engine (inferred provenance)."""

    good_reduces = 2
    bad_reduces = 2
    bad_mapper = CORRECT_MAPPER

    def build(self) -> None:
        text = self._make_corpus()
        hdfs = HDFS()
        stored = hdfs.write(INPUT_PATH, text)
        self.hdfs = hdfs
        self.program = declarative.mapreduce_program()
        self.good_execution = self._run_job(
            GOOD_JOB, stored, self.good_reduces, CORRECT_MAPPER
        )
        self.bad_execution = self._run_job(
            BAD_JOB, stored, self.bad_reduces, self.bad_mapper
        )
        self._events_for(
            text, self.good_reduces, self.bad_reduces, self.bad_mapper
        )

    def _run_job(self, job_id, stored, reduces, mapper_version) -> Execution:
        execution = Execution(self.program, name=f"{self.name}:{job_id}")
        config = JobConfig({REDUCES_KEY: reduces})
        for key, value in config.items():
            execution.insert(
                declarative.job_config_tuple(key, value), mutable=True
            )
        execution.insert(
            declarative.mapper_code(
                mapper_version, mapper_checksum(mapper_version)
            ),
            mutable=True,
        )
        for tup in declarative.load_words(stored):
            execution.insert(tup, mutable=False)
        execution.insert(declarative.job_run(job_id, stored.path), mutable=False)
        execution.barrier()
        return execution


class _ImperativeMRScenario(_MRScenarioBase):
    """Runs both jobs on the instrumented runtime (reported provenance)."""

    good_reduces = 2
    bad_reduces = 2
    bad_mapper = CORRECT_MAPPER

    def build(self) -> None:
        text = self._make_corpus()
        hdfs = HDFS()
        stored = hdfs.write(INPUT_PATH, text)
        self.hdfs = hdfs
        self.program = declarative.mapreduce_program()
        self.good_execution = ImperativeMapReduceExecution(
            GOOD_JOB,
            hdfs,
            stored.path,
            JobConfig({REDUCES_KEY: self.good_reduces}),
            CORRECT_MAPPER,
        )
        self.bad_execution = ImperativeMapReduceExecution(
            BAD_JOB,
            hdfs,
            stored.path,
            JobConfig({REDUCES_KEY: self.bad_reduces}),
            self.bad_mapper,
        )
        self._events_for(
            text, self.good_reduces, self.bad_reduces, self.bad_mapper
        )


class MR1DeclarativeConfigChange(_DeclarativeMRScenario):
    name = "MR1-D"
    description = "Reducer count changed accidentally (declarative model)"
    bad_reduces = 4


class MR2DeclarativeCodeChange(_DeclarativeMRScenario):
    name = "MR2-D"
    description = "Buggy mapper drops first word of each line (declarative)"
    bad_mapper = BUGGY_MAPPER


class MR1ImperativeConfigChange(_ImperativeMRScenario):
    name = "MR1-I"
    description = "Reducer count changed accidentally (instrumented Hadoop)"
    bad_reduces = 4


class MR2ImperativeCodeChange(_ImperativeMRScenario):
    name = "MR2-I"
    description = "Buggy mapper drops first word of each line (instrumented)"
    bad_mapper = BUGGY_MAPPER
