"""SDN scenarios with a declarative controller in the loop.

These replay SDN1 and SDN2 with flow entries *derived* from operator
policies by the ``inst`` rule (see
:mod:`repro.sdn.declarative_controller`).  Provenance now reaches into
the controller program — "associate each flow entry with the parts of
the controller program that were used to compute it" (Section 1) — and
DiffProv's root causes are the policies themselves:

- **SDN1-C**: the untrusted-subnet policy carries the /24 typo; the
  diagnosis is the corrected *policy*, not any single compiled entry.
- **SDN2-C**: a second controller app installs an overlapping
  higher-priority policy; the hijacking flow entry is derived state, so
  the diagnosis traces through its derivation to remove the policy.
"""

from __future__ import annotations

from ..replay.execution import Execution
from ..sdn import model
from ..sdn.declarative_controller import (
    controller_program,
    next_hop_tuples,
    policy,
)
from ..sdn.topology import Topology
from ..sdn.traces import TraceConfig, synthetic_trace
from .base import Scenario

__all__ = ["SDN1WithController", "SDN2WithController"]


def _controller_topology() -> Topology:
    topo = Topology("controller")
    for name in ("s1", "s2", "s3", "s4"):
        topo.add_switch(name)
    topo.add_host("web1", "172.16.0.1")
    topo.add_host("web2", "172.16.0.2")
    topo.add_host("scrubber", "172.16.0.9")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s3", "s4")
    topo.add_link("s2", "web1")
    topo.add_link("s4", "web2")
    topo.add_link("s3", "scrubber")
    return topo


class _ControllerScenario(Scenario):
    """Shared wiring/routing construction."""

    SERVICE_DST = "172.16.0.80"

    def _start(self):
        topo = _controller_topology()
        self.topology = topo
        self.program = controller_program()
        execution = Execution(self.program, name=self.name)
        for tup in topo.wiring_tuples():
            execution.insert(tup, mutable=False)
        for tup in next_hop_tuples(topo):
            execution.insert(tup, mutable=False)
        return topo, execution

    def _background(self, execution, count, seed):
        trace = synthetic_trace(
            TraceConfig(
                count=count,
                src_prefixes=("10.0.0.0/8",),
                dst_prefixes=("172.16.0.0/24",),
                seed=seed,
            )
        )
        pkt = 0
        for packet in trace:
            pkt += 1
            execution.insert(
                model.packet("s1", pkt, packet.src, packet.dst), mutable=False
            )
        return pkt


class SDN1WithController(_ControllerScenario):
    name = "SDN1-C"
    description = "SDN1 with the broken prefix inside a controller policy"

    GOOD_SRC = "4.3.2.1"
    BAD_SRC = "4.3.3.1"

    def build(self) -> None:
        topo, execution = self._start()
        # The operator's intent is 4.3.2.0/23; she typed /24.
        self.broken_policy = policy(
            "untrusted", 10, "4.3.2.0/24", "0.0.0.0/0", "web1"
        )
        execution.insert(self.broken_policy, mutable=True)
        execution.insert(
            policy("general", 1, "0.0.0.0/0", "0.0.0.0/0", "web2"),
            mutable=True,
        )
        pkt = self._background(
            execution, self.params.get("background_packets", 15), seed=23
        )
        self.good_pkt, self.bad_pkt = pkt + 1, pkt + 2
        execution.insert(
            model.packet("s1", self.good_pkt, self.GOOD_SRC, self.SERVICE_DST),
            mutable=False,
        )
        execution.insert(
            model.packet("s1", self.bad_pkt, self.BAD_SRC, self.SERVICE_DST),
            mutable=False,
        )
        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = model.delivered(
            "web1", self.good_pkt, self.GOOD_SRC, self.SERVICE_DST
        )
        self.bad_event = model.delivered(
            "web2", self.bad_pkt, self.BAD_SRC, self.SERVICE_DST
        )


class SDN2WithController(_ControllerScenario):
    name = "SDN2-C"
    description = "SDN2 with the hijacking rule installed by a second app"

    GOOD_SRC = "10.1.1.1"
    BAD_SRC = "4.3.1.1"

    def build(self) -> None:
        topo, execution = self._start()
        execution.insert(
            policy("webapp", 5, "0.0.0.0/0", "172.16.0.0/24", "web2"),
            mutable=True,
        )
        pkt = self._background(
            execution, self.params.get("background_packets", 15), seed=29
        )
        self.good_pkt = pkt + 1
        execution.insert(
            model.packet("s1", self.good_pkt, self.GOOD_SRC, self.SERVICE_DST),
            mutable=False,
        )
        # The second app deploys its (too broad) scrubbing policy.
        self.hijack_policy = policy(
            "secapp", 10, "4.3.0.0/16", "0.0.0.0/0", "scrubber"
        )
        execution.insert(self.hijack_policy, mutable=True)
        self.bad_pkt = self.good_pkt + 1
        execution.insert(
            model.packet("s1", self.bad_pkt, self.BAD_SRC, self.SERVICE_DST),
            mutable=False,
        )
        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = model.delivered(
            "web2", self.good_pkt, self.GOOD_SRC, self.SERVICE_DST
        )
        self.bad_event = model.delivered(
            "scrubber", self.bad_pkt, self.BAD_SRC, self.SERVICE_DST
        )
