"""The complex-network scenario of Section 6.7.

A Stanford-backbone-like campus network: 14 Operational Zone (OZ)
routers and 2 backbone routers in a tree-like topology, configured with
generated forwarding entries and ACL rules (757k entries / 1.5k ACLs at
full scale; the default is scaled down to stay laptop-friendly — pass
``full_scale=True`` to a benchmark run for the paper's numbers).

The reproduced fault is ATPG's "Forwarding Error": an entry on S2 (here
``oz2``) drops packets to 172.20.10.32/27, H2's subnet.  On top of it:

- **20 additional faulty rules** — 10 on the H1→H2 path, 10 on other
  routers — none causally related to the queried packet;
- **background traffic** — an HTTP client, a bulk file download, an
  NFS crawl, and a replayed synthetic backbone trace.

The network runs on the black-box emulator; provenance comes from the
external-specification reconstructor.  The reference event is a packet
from H1 to the co-located subnet 172.19.254.0/24, which shares oz2's
aggregate route with H2's subnet.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple as PyTuple

from ..addresses import IPv4Address, Prefix
from ..sdn import model
from ..sdn.emulation import EmulatedNetworkExecution, NetworkConfig
from ..sdn.topology import Topology
from ..sdn.traces import TraceConfig, synthetic_trace
from .base import Scenario

__all__ = [
    "StanfordForwardingError",
    "build_stanford_config",
    "stream_noise_entries",
]

ANY = Prefix("0.0.0.0/0")
OZ_COUNT = 14
H1_IP = "10.1.0.1"
H2_IP = "172.20.10.33"  # inside 172.20.10.32/27
COLOCATED_IP = "172.19.254.7"  # inside 172.19.254.0/24
FAULT_PRIORITY = 2000
ACL_PRIORITY = 1000
AGGREGATE_PRIORITY = 5
NOISE_PRIORITY = 3

# Scaled-down defaults; the paper's setup is 757k entries / 1500 ACLs.
DEFAULT_ENTRIES_PER_ROUTER = 300
FULL_SCALE_ENTRIES_PER_ROUTER = 47_000  # ~757k across 16 routers
DEFAULT_ACL_RULES = 96
FULL_SCALE_ACL_RULES = 1500


def stanford_topology() -> Topology:
    """14 OZ routers + 2 backbone routers, one gateway host per zone."""
    topo = Topology("stanford")
    topo.add_switch("bb1")
    topo.add_switch("bb2")
    for index in range(1, OZ_COUNT + 1):
        name = f"oz{index}"
        topo.add_switch(name)
        topo.add_link(name, "bb1")
        topo.add_link(name, "bb2")
        topo.add_host(f"gw{index}", f"10.{index}.0.254")
        topo.add_link(name, f"gw{index}")
    return topo


def zone_prefix(index: int) -> Prefix:
    return Prefix(f"10.{index}.0.0/16")


def stream_noise_entries(
    rng: random.Random,
    switch: str,
    ports: Sequence[int],
    count: int,
    table,
):
    """Yield ``count`` collision-free noise routes for one router.

    Generated entries are yielded one at a time and installed by the
    caller as they arrive, so full-scale builds (47k entries x 16
    routers) never hold a per-router entry list — build memory stays
    flat at one in-flight entry.  Collisions are rejected against the
    flow table's O(1) membership, re-rolling the rng; the rng
    trajectory is therefore a function of (seed, count) alone and the
    generated configuration is stable across refactors.
    """
    installed = 0
    while installed < count:
        zone = rng.randrange(1, OZ_COUNT + 1)
        third = rng.randrange(1, 255)
        length = rng.choice((24, 25, 26, 27))
        subnet = rng.randrange(1 << (length - 24)) << (32 - length)
        base = (10 << 24) | (zone << 16) | (third << 8)
        pfx = Prefix(IPv4Address(base | subnet), length)
        entry = model.flow_entry(
            switch,
            NOISE_PRIORITY + rng.randrange(1, 4),
            ANY,
            pfx,
            rng.choice(ports),
        )
        if entry not in table:
            installed += 1
            yield entry


def build_stanford_config(
    entries_per_router: int = DEFAULT_ENTRIES_PER_ROUTER,
    acl_rules: int = DEFAULT_ACL_RULES,
    extra_faults: int = 20,
    seed: int = 20,
) -> PyTuple[Topology, NetworkConfig, List]:
    """Generate topology + configuration; returns the injected faults."""
    rng = random.Random(seed)
    topo = stanford_topology()
    config = NetworkConfig(topo)
    faults: List = []

    oz_names = [f"oz{i}" for i in range(1, OZ_COUNT + 1)]
    for index, name in enumerate(oz_names, start=1):
        backbone = "bb1" if index % 2 else "bb2"
        up_port = topo.port(name, backbone)
        gw_port = topo.port(name, f"gw{index}")
        # Local zone delivery, inter-zone aggregates, and a default up.
        config.install(
            model.flow_entry(name, AGGREGATE_PRIORITY, ANY, zone_prefix(index), gw_port)
        )
        for other in range(1, OZ_COUNT + 1):
            if other != index:
                config.install(
                    model.flow_entry(
                        name, AGGREGATE_PRIORITY, ANY, zone_prefix(other), up_port
                    )
                )
        config.install(model.flow_entry(name, 1, ANY, ANY, up_port))
    # oz2 additionally owns the two special subnets behind its gateway.
    gw2_port = topo.port("oz2", "gw2")
    config.install(
        model.flow_entry("oz2", AGGREGATE_PRIORITY, ANY, Prefix("172.16.0.0/12"), gw2_port)
    )
    for backbone in ("bb1", "bb2"):
        for index in range(1, OZ_COUNT + 1):
            port = topo.port(backbone, f"oz{index}")
            config.install(
                model.flow_entry(
                    backbone, AGGREGATE_PRIORITY, ANY, zone_prefix(index), port
                )
            )
        config.install(
            model.flow_entry(
                backbone,
                AGGREGATE_PRIORITY,
                ANY,
                Prefix("172.16.0.0/12"),
                topo.port(backbone, "oz2"),
            )
        )

    # Generated forwarding noise: specific routes (/24 to /27) that
    # refine the zone aggregates without touching the special
    # 172.16.0.0/12 space.  The prefix space is wide enough that even
    # the full-scale 47k-entries-per-router configuration stays
    # collision-free.  Entries stream straight from the generator into
    # the flow tables — no intermediate per-router lists.
    for switch in topo.switches():
        ports = sorted(
            topo.port(switch, n)
            for n in topo.neighbors(switch)
            if topo.is_switch(n)
        )
        for entry in stream_noise_entries(
            rng, switch, ports, entries_per_router, config.tables[switch]
        ):
            config.install(entry)

    # ACLs: high-priority drops for external scanner ranges.
    switches = topo.switches()
    for index in range(acl_rules):
        switch = switches[index % len(switches)]
        src = Prefix(f"203.{rng.randrange(256)}.{rng.randrange(256)}.0/24")
        config.install(
            model.flow_entry(switch, ACL_PRIORITY, src, ANY, model.DROP_ACTION)
        )

    # THE fault: oz2 drops H2's subnet (ATPG's "Forwarding Error").
    fault = model.flow_entry(
        "oz2", FAULT_PRIORITY, ANY, Prefix("172.20.10.32/27"), model.DROP_ACTION
    )
    config.install(fault)
    faults.append(fault)

    # 20 additional faults, none causally related to the H1->H2 flow:
    # 10 on the H1 path (oz1, bb1, oz2), 10 elsewhere.
    on_path = ["oz1", "bb1", "oz2"]
    off_path = [s for s in switches if s not in on_path]
    for index in range(extra_faults):
        switch = on_path[index % 3] if index < 10 else off_path[index % len(off_path)]
        victim = Prefix(f"10.{rng.randrange(20, 200)}.{rng.randrange(255)}.0/24")
        bogus = model.flow_entry(
            switch, FAULT_PRIORITY, ANY, victim, model.DROP_ACTION
        )
        config.install(bogus)
        faults.append(bogus)
    return topo, config, faults


def background_schedule(
    topo: Topology, count: int, seed: int = 21
) -> List[PyTuple[str, int, IPv4Address, IPv4Address]]:
    """The Section 6.7 background traffic mix.

    1) an HTTP client fetching a homepage periodically, 2) a bulk file
    download, 3) an NFS crawl, 4) a replayed synthetic backbone trace.
    """
    rng = random.Random(seed)
    schedule: List[PyTuple] = []
    pkt = 100_000
    http = ("10.3.0.10", "10.5.0.80", "oz3")
    bulk = ("10.4.0.20", "10.6.0.21", "oz4")
    nfs = ("10.7.0.30", "10.8.0.31", "oz7")
    apps = [http, bulk, nfs]
    for index in range(count // 2):
        src, dst, ingress = apps[index % 3]
        pkt += 1
        schedule.append((ingress, pkt, IPv4Address(src), IPv4Address(dst)))
    trace = synthetic_trace(
        TraceConfig(
            count=count - count // 2,
            src_prefixes=tuple(f"10.{z}.0.0/16" for z in (9, 10, 11)),
            dst_prefixes=tuple(f"10.{z}.0.0/16" for z in (12, 13, 14)),
            seed=seed,
        )
    )
    for trace_packet in trace:
        pkt += 1
        zone = trace_packet.src.octets()[1]
        schedule.append((f"oz{zone}", pkt, trace_packet.src, trace_packet.dst))
    return schedule


class StanfordForwardingError(Scenario):
    name = "Stanford-6.7"
    description = (
        "ATPG forwarding error in a Stanford-like campus network with "
        "20 extra faults and background traffic (black-box emulation)"
    )

    def build(self) -> None:
        entries = self.params.get(
            "entries_per_router",
            FULL_SCALE_ENTRIES_PER_ROUTER
            if self.params.get("full_scale")
            else DEFAULT_ENTRIES_PER_ROUTER,
        )
        acls = self.params.get(
            "acl_rules",
            FULL_SCALE_ACL_RULES
            if self.params.get("full_scale")
            else DEFAULT_ACL_RULES,
        )
        background = self.params.get("background_packets", 120)
        topo, config, faults = build_stanford_config(
            entries_per_router=entries, acl_rules=acls
        )
        self.topology = topo
        self.config = config
        self.faults = faults
        self.program = model.sdn_program()

        schedule = background_schedule(topo, background)
        # The reference: H1 -> the co-located subnet (delivered via gw2).
        good_pkt = 1
        schedule.append(("oz1", good_pkt, IPv4Address(H1_IP), IPv4Address(COLOCATED_IP)))
        # The fault: H1 -> H2's subnet, dropped midway at oz2.
        bad_pkt = 2
        schedule.append(("oz1", bad_pkt, IPv4Address(H1_IP), IPv4Address(H2_IP)))

        execution = EmulatedNetworkExecution("stanford", config, schedule)
        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = model.delivered("gw2", good_pkt, H1_IP, COLOCATED_IP)
        self.bad_event = _dropped("oz2", bad_pkt)
        self.expected_fault = faults[0]


def _dropped(switch: str, pkt: int):
    from ..datalog.tuples import Tuple

    return Tuple("dropped", [switch, pkt, IPv4Address(H1_IP), IPv4Address(H2_IP)])
