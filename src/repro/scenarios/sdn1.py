"""SDN1: broken (overly specific) flow entry — the paper's Section 2
running example.

The operator wants web server #2 to handle most HTTP requests, but
requests from the untrusted subnet 4.3.2.0/23 must go to web server #1,
which is co-located with a DPI device fed by mirrored traffic from S6.
She configures S2 with a specific rule R1 for the untrusted subnet and
a general rule R2 for everything else — but writes the subnet as
4.3.2.0/24 instead of /23.  Requests from 4.3.2.1 still reach server #1
(the good event); requests from 4.3.3.1 fall through to R2 and arrive
at server #2 (the bad event).
"""

from __future__ import annotations

from ..addresses import Prefix
from ..replay.execution import Execution
from ..sdn import model
from ..sdn.topology import Topology
from ..sdn.traces import TraceConfig, synthetic_trace
from .base import Scenario

__all__ = ["SDN1BrokenFlowEntry", "SDN1LossyProvenance"]

MIRROR_GROUP = -1


def figure1_topology() -> Topology:
    """The six-switch network of Figure 1."""
    topo = Topology("figure1")
    for name in ("s1", "s2", "s3", "s4", "s5", "s6"):
        topo.add_switch(name)
    topo.add_host("web1", "172.16.0.1")
    topo.add_host("web2", "172.16.0.2")
    topo.add_host("dpi", "172.16.0.9")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s3", "s4")
    topo.add_link("s4", "s5")
    topo.add_link("s2", "s6")
    topo.add_link("s5", "web2")
    topo.add_link("s6", "web1")
    topo.add_link("s6", "dpi")
    return topo


def install_figure1_config(
    execution: Execution, topo: Topology, untrusted_prefix
) -> None:
    """Wiring plus the flow tables of Figure 1.

    ``untrusted_prefix`` is what the operator typed for rule R1 —
    passing 4.3.2.0/24 injects the fault, 4.3.2.0/23 is the intent.
    """
    for tup in topo.wiring_tuples():
        execution.insert(tup, mutable=False)
    any_pfx = Prefix("0.0.0.0/0")
    entries = [
        # s1: everything towards s2.
        model.flow_entry("s1", 1, any_pfx, any_pfx, topo.port("s1", "s2")),
        # s2: R1 (specific, untrusted -> s6) and R2 (general -> s3).
        model.flow_entry(
            "s2", 10, Prefix(untrusted_prefix), any_pfx, topo.port("s2", "s6")
        ),
        model.flow_entry("s2", 1, any_pfx, any_pfx, topo.port("s2", "s3")),
        # s3, s4: forward along the chain towards web2.
        model.flow_entry("s3", 1, any_pfx, any_pfx, topo.port("s3", "s4")),
        model.flow_entry("s4", 1, any_pfx, any_pfx, topo.port("s4", "s5")),
        # s5: deliver to web2.
        model.flow_entry("s5", 1, any_pfx, any_pfx, topo.port("s5", "web2")),
        # s6: mirror to web1 and the DPI device (a group action).
        model.flow_entry("s6", 1, any_pfx, any_pfx, MIRROR_GROUP),
    ]
    for entry in entries:
        execution.insert(entry, mutable=True)
    execution.insert(
        model.group_entry("s6", MIRROR_GROUP, topo.port("s6", "web1")),
        mutable=True,
    )
    execution.insert(
        model.group_entry("s6", MIRROR_GROUP, topo.port("s6", "dpi")),
        mutable=True,
    )


class SDN1BrokenFlowEntry(Scenario):
    name = "SDN1"
    description = "Broken flow entry: overly specific untrusted-subnet rule"

    GOOD_SRC = "4.3.2.1"
    BAD_SRC = "4.3.3.1"
    SERVICE_DST = "172.16.0.80"

    def build(self) -> None:
        background = self.params.get("background_packets", 30)
        self.topology = figure1_topology()
        self.program = model.sdn_program()
        execution = Execution(
            self.program, name="sdn1", faults=self.fault_plan
        )
        install_figure1_config(
            execution, self.topology, untrusted_prefix="4.3.2.0/24"
        )

        pkt_id = 0
        # Background traffic from trusted subnets (replayed trace load).
        trace = synthetic_trace(
            TraceConfig(
                count=background,
                src_prefixes=("10.0.0.0/8", "192.168.0.0/16"),
                dst_prefixes=("172.16.0.0/24",),
                seed=7,
            )
        )
        for trace_packet in trace:
            pkt_id += 1
            execution.insert(
                model.packet("s1", pkt_id, trace_packet.src, trace_packet.dst),
                mutable=False,
                size=None,
            )
        # The good packet: from 4.3.2.1, matches R1, reaches web1.
        pkt_id += 1
        self.good_pkt = pkt_id
        execution.insert(
            model.packet("s1", pkt_id, self.GOOD_SRC, self.SERVICE_DST),
            mutable=False,
        )
        # The bad packet: from 4.3.3.1, misses R1, lands on web2.
        pkt_id += 1
        self.bad_pkt = pkt_id
        execution.insert(
            model.packet("s1", pkt_id, self.BAD_SRC, self.SERVICE_DST),
            mutable=False,
        )

        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = model.delivered(
            "web1", self.good_pkt, self.GOOD_SRC, self.SERVICE_DST
        )
        self.bad_event = model.delivered(
            "web2", self.bad_pkt, self.BAD_SRC, self.SERVICE_DST
        )


class SDN1LossyProvenance(SDN1BrokenFlowEntry):
    """SDN1 rerun under lossy provenance logging (the robustness demo).

    A fraction of recorder events never persists and remote fetches can
    time out, so DiffProv must degrade gracefully: it still localizes
    the broken flow entry, but the report is marked degraded, missing
    subtrees are listed as UNKNOWN, and retries/timeouts show up in the
    distributed query stats.
    """

    name = "SDN1-F"
    description = "SDN1 under 10% provenance loss + fallible fetches"
    fault_free = False

    DEFAULT_FAULTS = "loss=0.1,fetch-loss=0.15,retries=3,seed=11"

    def __init__(self, **params):
        params.setdefault("faults", self.DEFAULT_FAULTS)
        super().__init__(**params)
