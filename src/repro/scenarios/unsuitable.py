"""The unsuitable-reference study of Section 6.3.

The paper issues ten diagnostic queries in the SDN1 and MR1-D scenarios
with randomly picked reference events (filtering out events known to be
suitable) and observes that DiffProv fails with a typed error in every
case: three because the reference's seed has a different *type* than
the event of interest, seven because aligning the trees would require
changing *immutable* tuples — e.g. the reference lives in a network
with different wiring, or a reference job consumed a different input
file ("another administrative domain").

This module reproduces the study: it builds the two scenarios plus a
differently-wired network and a different-input job to draw unsuitable
references from, runs the queries, and reports the failure taxonomy.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..addresses import Prefix
from ..core.diffprov import DiffProv
from ..datalog.tuples import Tuple
from ..mapreduce import declarative
from ..mapreduce.config import REDUCES_KEY, JobConfig
from ..mapreduce.corpus import generate_corpus
from ..mapreduce.hdfs import HDFS
from ..mapreduce.wordcount import CORRECT_MAPPER, mapper_checksum
from ..replay.execution import Execution
from ..sdn import model
from ..sdn.topology import Topology
from .mr import MR1DeclarativeConfigChange
from .sdn1 import SDN1BrokenFlowEntry

__all__ = ["UnsuitableQuery", "UnsuitableReferenceStudy"]


class UnsuitableQuery:
    """One query with a deliberately unsuitable reference event."""

    __slots__ = ("scenario", "reference", "category", "message", "success")

    def __init__(self, scenario, reference, category, message, success):
        self.scenario = scenario
        self.reference = reference
        self.category = category
        self.message = message
        self.success = success

    def __repr__(self):
        return f"UnsuitableQuery({self.scenario}, {self.category})"


class UnsuitableReferenceStudy:
    """Reproduces the ten unsuitable-reference queries of Section 6.3."""

    def __init__(self, seed: int = 1, background_packets: int = 8, corpus_lines: int = 16):
        self.rng = random.Random(seed)
        self.sdn = SDN1BrokenFlowEntry(background_packets=background_packets).setup()
        self.mr = MR1DeclarativeConfigChange(corpus_lines=corpus_lines).setup()
        self._foreign_network: Optional[Execution] = None
        self._foreign_event: Optional[Tuple] = None
        self._foreign_job: Optional[Execution] = None
        self._foreign_job_event: Optional[Tuple] = None

    # -- reference pools -----------------------------------------------------

    def type_mismatch_references(self, count: int) -> List[tuple]:
        """References whose provenance seed is not a packet/job event.

        Drawn from configuration/wiring tuples of the same executions —
        e.g. comparing a misrouted packet against a flow entry.
        """
        sdn_pool = [
            t
            for table in ("flowEntry", "link", "hostAt", "groupEntry")
            for t in self.sdn.good_execution.engine.lookup(table)
        ]
        mr_pool = self.mr.good_execution.engine.lookup("jobConfig")
        picks = []
        for index in range(count):
            if index % 2 == 0 and sdn_pool:
                picks.append(("SDN1", self.sdn, self.rng.choice(sdn_pool)))
            else:
                picks.append(("MR1-D", self.mr, self.rng.choice(mr_pool)))
        return picks

    def foreign_network_reference(self) -> tuple:
        """A delivery observed in a network with *different wiring*.

        Aligning against it eventually demands a hostAt/link change,
        which is immutable — the paper's "reference event occurred in
        another administrative domain".
        """
        if self._foreign_network is None:
            topo = Topology("foreign")
            for name in ("s1", "s2", "s3"):
                topo.add_switch(name)
            topo.add_host("web1", "172.16.0.1")
            topo.add_link("s1", "s2")
            topo.add_link("s2", "s3")
            topo.add_link("s3", "web1")
            execution = Execution(self.sdn.program, name="foreign-network")
            for tup in topo.wiring_tuples():
                execution.insert(tup, mutable=False)
            any_pfx = Prefix("0.0.0.0/0")
            untrusted = Prefix("4.3.2.0/23")
            for entry in (
                model.flow_entry("s1", 1, any_pfx, any_pfx, topo.port("s1", "s2")),
                model.flow_entry("s2", 10, untrusted, any_pfx, topo.port("s2", "s3")),
                model.flow_entry("s3", 1, any_pfx, any_pfx, topo.port("s3", "web1")),
            ):
                execution.insert(entry, mutable=True)
            execution.insert(
                model.packet("s1", 9001, "4.3.2.1", "172.16.0.80"), mutable=False
            )
            self._foreign_network = execution
            self._foreign_event = model.delivered(
                "web1", 9001, "4.3.2.1", "172.16.0.80"
            )
        return ("SDN1", self._foreign_network, self._foreign_event, self.sdn)

    def foreign_input_reference(self) -> tuple:
        """An output record of a job that consumed a *different file*.

        Aligning requires the other file's word occurrences to exist in
        the bad execution — input data is immutable.
        """
        if self._foreign_job is None:
            hdfs = HDFS()
            stored = hdfs.write(
                "/corpus/last-week.txt", generate_corpus(lines=12, seed=99)
            )
            execution = Execution(self.mr.program, name="foreign-job")
            config = JobConfig({REDUCES_KEY: 2})
            for key, value in config.items():
                execution.insert(
                    declarative.job_config_tuple(key, value), mutable=True
                )
            execution.insert(
                declarative.mapper_code(
                    CORRECT_MAPPER, mapper_checksum(CORRECT_MAPPER)
                ),
                mutable=True,
            )
            for tup in declarative.load_words(stored):
                execution.insert(tup, mutable=False)
            execution.insert(
                declarative.job_run("job-lastweek", stored.path), mutable=False
            )
            execution.barrier()
            outputs = execution.engine.lookup("output")
            self._foreign_job = execution
            self._foreign_job_event = self.rng.choice(outputs)
        return ("MR1-D", self._foreign_job, self._foreign_job_event, self.mr)

    # -- the study -----------------------------------------------------------

    def run(self, mismatches: int = 3, immutables: int = 7) -> List[UnsuitableQuery]:
        """Issue the queries; every one must fail with a typed error."""
        outcomes: List[UnsuitableQuery] = []
        for name, scenario, reference in self.type_mismatch_references(mismatches):
            outcomes.append(self._query(name, scenario, scenario, reference))
        for index in range(immutables):
            if index % 2 == 0:
                name, good_exec, event, scenario = self.foreign_network_reference()
            else:
                name, good_exec, event, scenario = self.foreign_input_reference()
            outcomes.append(self._query(name, scenario, good_exec, event))
        return outcomes

    def _query(self, name, scenario, good_exec_or_scenario, reference) -> UnsuitableQuery:
        if isinstance(good_exec_or_scenario, Execution):
            good_execution = good_exec_or_scenario
        else:
            good_execution = good_exec_or_scenario.good_execution
        debugger = DiffProv(scenario.program)
        report = debugger.diagnose(
            good_execution,
            scenario.bad_execution,
            reference,
            scenario.bad_event,
        )
        return UnsuitableQuery(
            scenario=name,
            reference=reference,
            category=report.failure_category,
            message=str(report.failure) if report.failure else "",
            success=report.success,
        )

    @staticmethod
    def tally(outcomes: List[UnsuitableQuery]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            key = outcome.category if not outcome.success else "success"
            counts[key] = counts.get(key, 0) + 1
        return counts
