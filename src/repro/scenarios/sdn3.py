"""SDN3: unexpected rule expiration.

A multicast rule streams video to two subscriber hosts via a group
action.  When the rule expires, the traffic falls through to a
lower-priority unicast rule and is delivered to a wrong host.  The good
example is a packet observed *in the past*, before the expiration —
which is exactly what the temporal provenance graph can still explain
(Section 3.2).
"""

from __future__ import annotations

from ..addresses import Prefix
from ..replay.execution import Execution
from ..sdn import model
from ..sdn.topology import Topology
from .base import Scenario

__all__ = ["SDN3UnexpectedRuleExpiration"]

VIDEO_GROUP = -2


class SDN3UnexpectedRuleExpiration(Scenario):
    name = "SDN3"
    description = "Multicast rule expires; traffic falls to a unicast rule"

    STREAM_SRC = "10.9.9.9"
    MULTICAST_DST = "239.0.0.1"

    def build(self) -> None:
        background = self.params.get("background_packets", 20)
        topo = Topology("sdn3")
        for name in ("s1", "s2"):
            topo.add_switch(name)
        topo.add_host("sub1", "172.16.1.1")
        topo.add_host("sub2", "172.16.1.2")
        topo.add_host("other", "172.16.1.3")
        topo.add_link("s1", "s2")
        topo.add_link("s2", "sub1")
        topo.add_link("s2", "sub2")
        topo.add_link("s2", "other")
        self.topology = topo

        self.program = model.sdn_program()
        execution = Execution(self.program, name="sdn3")
        for tup in topo.wiring_tuples():
            execution.insert(tup, mutable=False)
        any_pfx = Prefix("0.0.0.0/0")
        multicast_entry = model.flow_entry(
            "s2", 10, any_pfx, Prefix("239.0.0.1/32"), VIDEO_GROUP
        )
        entries = [
            model.flow_entry("s1", 1, any_pfx, any_pfx, topo.port("s1", "s2")),
            multicast_entry,
            # The lower-priority rule that takes over after expiration.
            model.flow_entry("s2", 1, any_pfx, any_pfx, topo.port("s2", "other")),
        ]
        for entry in entries:
            execution.insert(entry, mutable=True)
        execution.insert(
            model.group_entry("s2", VIDEO_GROUP, topo.port("s2", "sub1")),
            mutable=True,
        )
        execution.insert(
            model.group_entry("s2", VIDEO_GROUP, topo.port("s2", "sub2")),
            mutable=True,
        )

        pkt_id = 0
        # Video packets while the multicast rule is alive (the good past).
        for _ in range(max(1, background // 2)):
            pkt_id += 1
            execution.insert(
                model.packet("s1", pkt_id, self.STREAM_SRC, self.MULTICAST_DST),
                mutable=False,
            )
        self.good_pkt = pkt_id
        # The rule expires (modelled as a deletion, Section 3.1).
        execution.delete(multicast_entry)
        # Video packets after the expiration: delivered to the wrong host.
        for _ in range(max(1, background - background // 2)):
            pkt_id += 1
            execution.insert(
                model.packet("s1", pkt_id, self.STREAM_SRC, self.MULTICAST_DST),
                mutable=False,
            )
        self.bad_pkt = pkt_id

        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = model.delivered(
            "sub1", self.good_pkt, self.STREAM_SRC, self.MULTICAST_DST
        )
        self.bad_event = model.delivered(
            "other", self.bad_pkt, self.STREAM_SRC, self.MULTICAST_DST
        )
