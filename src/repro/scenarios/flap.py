"""Intermittent failure: a flapping route (Section 2.4's third class).

"The rest were intermittent failures, where a service was experiencing
instability but was not rendered completely useless.  For instance, one
post said that diagnostic queries sometimes succeeded, sometimes failed
silently, and sometimes took an extremely long time."  The paper's
introduction gives the canonical networking cause: a route that flaps,
e.g. a BGP "disagree gadget".

Here a primary route entry is repeatedly withdrawn and re-announced
while probes flow through the network.  Probes during up-phases reach
the service (any of them can serve as the reference); probes during
down-phases fall to a backup route and land on a sorry-server.  The
temporal provenance graph keeps one EXIST interval per up-phase, so
both kinds of events remain explainable, and DiffProv's diagnosis is
the withdrawn route itself — re-announced just before the failed probe.
"""

from __future__ import annotations

from ..addresses import Prefix
from ..replay.execution import Execution
from ..sdn import model
from ..sdn.topology import Topology
from .base import Scenario

__all__ = ["FlappingRoute"]


class FlappingRoute(Scenario):
    name = "FLAP"
    description = "A route flaps; probes intermittently reach a sorry-server"

    PROBE_SRC = "10.0.0.5"
    SERVICE_DST = "172.16.5.80"

    def build(self) -> None:
        flaps = self.params.get("flaps", 3)
        probes_per_phase = self.params.get("probes_per_phase", 2)

        topo = Topology("flap")
        for name in ("edge", "core"):
            topo.add_switch(name)
        topo.add_host("service", self.SERVICE_DST)
        topo.add_host("sorry", "172.16.5.99")
        topo.add_link("edge", "core")
        topo.add_link("core", "service")
        topo.add_link("core", "sorry")
        self.topology = topo

        self.program = model.sdn_program()
        execution = Execution(self.program, name="flap")
        for tup in topo.wiring_tuples():
            execution.insert(tup, mutable=False)
        any_pfx = Prefix("0.0.0.0/0")
        primary = model.flow_entry(
            "core", 10, any_pfx, Prefix("172.16.5.80/32"), topo.port("core", "service")
        )
        self.primary_route = primary
        for entry in (
            model.flow_entry("edge", 1, any_pfx, any_pfx, topo.port("edge", "core")),
            primary,
            # The backup that catches traffic while the route is down.
            model.flow_entry("core", 1, any_pfx, any_pfx, topo.port("core", "sorry")),
        ):
            execution.insert(entry, mutable=True)

        pkt = 0
        self.up_probes = []
        self.down_probes = []
        for _ in range(flaps):
            # Up phase: probes reach the service.
            for _ in range(probes_per_phase):
                pkt += 1
                self.up_probes.append(pkt)
                execution.insert(
                    model.packet("edge", pkt, self.PROBE_SRC, self.SERVICE_DST),
                    mutable=False,
                )
            # The route flaps down ...
            execution.delete(primary)
            for _ in range(probes_per_phase):
                pkt += 1
                self.down_probes.append(pkt)
                execution.insert(
                    model.packet("edge", pkt, self.PROBE_SRC, self.SERVICE_DST),
                    mutable=False,
                )
            # ... and comes back.
            execution.insert(primary, mutable=True)
        # One final down-phase so the failure is current.
        execution.delete(primary)
        pkt += 1
        self.down_probes.append(pkt)
        execution.insert(
            model.packet("edge", pkt, self.PROBE_SRC, self.SERVICE_DST),
            mutable=False,
        )

        self.good_execution = execution
        self.bad_execution = execution
        # Reference: the last successful probe; problem: the last failed one.
        self.good_event = model.delivered(
            "service", self.up_probes[-1], self.PROBE_SRC, self.SERVICE_DST
        )
        self.bad_event = model.delivered(
            "sorry", self.down_probes[-1], self.PROBE_SRC, self.SERVICE_DST
        )
