"""Intermittent failure: a flapping route (Section 2.4's third class).

"The rest were intermittent failures, where a service was experiencing
instability but was not rendered completely useless.  For instance, one
post said that diagnostic queries sometimes succeeded, sometimes failed
silently, and sometimes took an extremely long time."  The paper's
introduction gives the canonical networking cause: a route that flaps,
e.g. a BGP "disagree gadget".

Here a primary route entry is repeatedly withdrawn and re-announced
while probes flow through the network.  Probes during up-phases reach
the service (any of them can serve as the reference); probes during
down-phases fall to a backup route and land on a sorry-server.  The
temporal provenance graph keeps one EXIST interval per up-phase, so
both kinds of events remain explainable, and DiffProv's diagnosis is
the withdrawn route itself — re-announced just before the failed probe.

Beyond the offline good/bad pair, the build also taps every base event
into a replayable *stream* (:mod:`repro.streaming.events`): setup
tuples, configuration churn, and probes annotated with their observed
outcome (reached host, health, synthetic latency).  ``FLAP-S`` is the
long-running variant — hundreds of seeded up/down phases — that the
streaming monitor watches end to end (docs/streaming.md).
"""

from __future__ import annotations

import random
import zlib
from typing import List

from ..addresses import Prefix
from ..replay.execution import Execution
from ..sdn import model
from ..sdn.topology import Topology
from ..streaming.events import StreamEvent
from .base import Scenario

__all__ = ["FlappingRoute", "FlappingRouteStream"]

# Logical spacing between stream events; probes add their synthetic
# service latency on top (advisory timestamps — ingestion orders by
# sequence number, never by clock).
_TICK_S = 0.005


class FlappingRoute(Scenario):
    name = "FLAP"
    description = "A route flaps; probes intermittently reach a sorry-server"

    PROBE_SRC = "10.0.0.5"
    SERVICE_DST = "172.16.5.80"

    def build(self) -> None:
        flaps = self.params.get("flaps", 3)
        probes_per_phase = self.params.get("probes_per_phase", 2)
        stream_seed = self.params.get("stream_seed", 0)

        topo = Topology("flap")
        for name in ("edge", "core"):
            topo.add_switch(name)
        topo.add_host("service", self.SERVICE_DST)
        topo.add_host("sorry", "172.16.5.99")
        topo.add_link("edge", "core")
        topo.add_link("core", "service")
        topo.add_link("core", "sorry")
        self.topology = topo

        self.program = model.sdn_program()
        execution = Execution(self.program, name="flap")

        # The stream tap: every call below appends one StreamEvent, so
        # replaying the stream reconstructs the execution exactly.
        self.stream: List[StreamEvent] = []
        self.phases: List[dict] = []
        self._clock = 0.0
        self._latency_rng = random.Random(
            zlib.crc32(f"flap-stream:{stream_seed}".encode())
        )

        for tup in topo.wiring_tuples():
            execution.insert(tup, mutable=False)
            self._tap("setup", tup, mutable=False)
        any_pfx = Prefix("0.0.0.0/0")
        primary = model.flow_entry(
            "core", 10, any_pfx, Prefix("172.16.5.80/32"), topo.port("core", "service")
        )
        self.primary_route = primary
        for entry in (
            model.flow_entry("edge", 1, any_pfx, any_pfx, topo.port("edge", "core")),
            primary,
            # The backup that catches traffic while the route is down.
            model.flow_entry("core", 1, any_pfx, any_pfx, topo.port("core", "sorry")),
        ):
            execution.insert(entry, mutable=True)
            self._tap("setup", entry, mutable=True)

        pkt = 0
        self.up_probes = []
        self.down_probes = []
        for _ in range(flaps):
            # Up phase: probes reach the service.
            pkt = self._phase(execution, "up", pkt, probes_per_phase)
            # The route flaps down ...
            execution.delete(primary)
            self._tap("delete", primary, mutable=True)
            pkt = self._phase(execution, "down", pkt, probes_per_phase)
            # ... and comes back.
            execution.insert(primary, mutable=True)
            self._tap("insert", primary, mutable=True)
        # One final down-phase so the failure is current.
        execution.delete(primary)
        self._tap("delete", primary, mutable=True)
        pkt = self._phase(execution, "down", pkt, 1)

        self.good_execution = execution
        self.bad_execution = execution
        # Reference: the last successful probe; problem: the last failed one.
        self.good_event = model.delivered(
            "service", self.up_probes[-1], self.PROBE_SRC, self.SERVICE_DST
        )
        self.bad_event = model.delivered(
            "sorry", self.down_probes[-1], self.PROBE_SRC, self.SERVICE_DST
        )

    # -- the stream tap ------------------------------------------------------

    def _tap(self, kind, tup, mutable=None, outcome=None) -> None:
        self._clock += _TICK_S
        self.stream.append(
            StreamEvent(
                seq=len(self.stream),
                ts=self._clock,
                kind=kind,
                tup=tup,
                mutable=mutable,
                outcome=outcome,
            )
        )

    def _phase(self, execution, phase_kind, pkt, count) -> int:
        """One up/down phase: ``count`` probes, each tapped with its outcome."""
        probes = []
        first_seq = len(self.stream)
        for _ in range(count):
            pkt += 1
            probes.append(pkt)
            probe = model.packet(
                "edge", pkt, self.PROBE_SRC, self.SERVICE_DST
            )
            execution.insert(probe, mutable=False)
            self._tap("probe", probe, mutable=False,
                      outcome=self._outcome(phase_kind))
            if phase_kind == "up":
                self.up_probes.append(pkt)
            else:
                self.down_probes.append(pkt)
        self.phases.append({
            "kind": phase_kind,
            "probes": probes,
            "first_seq": first_seq,
            "last_seq": len(self.stream) - 1,
        })
        return pkt

    def _outcome(self, phase_kind) -> dict:
        """What the black-box emulator reports for one probe.

        Up-phase probes reach the service quickly; down-phase probes
        fall to the backup route and land on the sorry-server — slower,
        and unhealthy.  Latency is synthetic but seeded, so the same
        parameters always produce the same stream.
        """
        jitter = self._latency_rng.random()
        if phase_kind == "up":
            return {"ok": True, "host": "service",
                    "latency_ms": round(8.0 + 4.0 * jitter, 3)}
        return {"ok": False, "host": "sorry",
                "latency_ms": round(26.0 + 9.0 * jitter, 3)}

    # -- streaming surface ---------------------------------------------------

    def stream_events(self) -> List[StreamEvent]:
        """The replayable stream this scenario emits (after setup)."""
        self.setup()
        return list(self.stream)

    def down_phases(self) -> List[dict]:
        """Ground truth for detector tests: the injected down-phases."""
        self.setup()
        return [phase for phase in self.phases if phase["kind"] == "down"]


class FlappingRouteStream(FlappingRoute):
    """FLAP-S: the long-running streaming variant of FLAP.

    Same topology and flap mechanics, but defaulting to hundreds of
    seeded up/down phases — enough stream to exercise windowed GC,
    watermark lateness, backpressure, and crash-resume in the monitor.
    """

    name = "FLAP-S"
    description = "Long-running flapping-route stream for the online monitor"

    DEFAULT_FLAPS = 200

    def build(self) -> None:
        self.params.setdefault("flaps", self.DEFAULT_FLAPS)
        self.params.setdefault("probes_per_phase", 2)
        super().build()
