"""SDN2: multi-controller inconsistency.

Two controller apps that are unaware of each other configure the same
switch.  App A (prio 5) sends web traffic to the web server; app B
(prio 10, a security app) sends traffic from a suspicious source range
to a scrubber.  B's header space is too broad and overlaps legitimate
traffic, so some of it is hijacked to the scrubber.  The good event is
a legitimate request outside the overlap; the bad event is a
legitimate request inside it.
"""

from __future__ import annotations

from ..addresses import Prefix
from ..replay.execution import Execution
from ..sdn import model
from ..sdn.topology import Topology
from ..sdn.traces import TraceConfig, synthetic_trace
from .base import Scenario

__all__ = ["SDN2MultiControllerInconsistency"]


class SDN2MultiControllerInconsistency(Scenario):
    name = "SDN2"
    description = "Two controller apps install conflicting, overlapping rules"

    GOOD_SRC = "10.1.1.1"
    BAD_SRC = "4.3.1.1"  # legitimate, but inside app B's too-broad range
    SERVICE_DST = "172.16.0.80"

    def build(self) -> None:
        background = self.params.get("background_packets", 30)
        topo = Topology("sdn2")
        for name in ("s1", "s2", "s3"):
            topo.add_switch(name)
        topo.add_host("web", "172.16.0.80")
        topo.add_host("scrubber", "172.16.0.99")
        topo.add_link("s1", "s2")
        topo.add_link("s2", "s3")
        topo.add_link("s3", "web")
        topo.add_link("s2", "scrubber")
        self.topology = topo

        self.program = model.sdn_program()
        execution = Execution(self.program, name="sdn2")
        for tup in topo.wiring_tuples():
            execution.insert(tup, mutable=False)
        any_pfx = Prefix("0.0.0.0/0")
        entries = [
            model.flow_entry("s1", 1, any_pfx, any_pfx, topo.port("s1", "s2")),
            # App A: web traffic towards the web server.
            model.flow_entry(
                "s2", 5, any_pfx, Prefix("172.16.0.0/24"), topo.port("s2", "s3")
            ),
            # App B: overly broad suspicious range -> scrubber (the fault:
            # 4.3.0.0/16 also covers legitimate sources like 4.3.1.1).
            model.flow_entry(
                "s2",
                10,
                Prefix("4.3.0.0/16"),
                any_pfx,
                topo.port("s2", "scrubber"),
            ),
            model.flow_entry("s3", 1, any_pfx, any_pfx, topo.port("s3", "web")),
        ]
        for entry in entries:
            execution.insert(entry, mutable=True)

        pkt_id = 0
        trace = synthetic_trace(
            TraceConfig(
                count=background,
                src_prefixes=("10.0.0.0/8",),
                dst_prefixes=("172.16.0.0/24",),
                seed=11,
            )
        )
        for trace_packet in trace:
            pkt_id += 1
            execution.insert(
                model.packet("s1", pkt_id, trace_packet.src, trace_packet.dst),
                mutable=False,
            )
        pkt_id += 1
        self.good_pkt = pkt_id
        execution.insert(
            model.packet("s1", pkt_id, self.GOOD_SRC, self.SERVICE_DST),
            mutable=False,
        )
        pkt_id += 1
        self.bad_pkt = pkt_id
        execution.insert(
            model.packet("s1", pkt_id, self.BAD_SRC, self.SERVICE_DST),
            mutable=False,
        )

        self.good_execution = execution
        self.bad_execution = execution
        self.good_event = model.delivered(
            "web", self.good_pkt, self.GOOD_SRC, self.SERVICE_DST
        )
        self.bad_event = model.delivered(
            "scrubber", self.bad_pkt, self.BAD_SRC, self.SERVICE_DST
        )
