"""The scenario harness.

A Scenario builds one or two logged executions containing a fault, and
names a good and a bad event.  On top of that it offers the three
diagnostic techniques compared in Table 1: classic provenance queries
(the Y! baseline), the plain tree diff strawman, and DiffProv.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple as PyTuple

from ..core.diffprov import DiffProv, DiffProvOptions
from ..core.report import DiagnosisReport
from ..datalog.config import EngineConfig
from ..datalog.rules import Program
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..faults import FaultPlan
from ..provenance.diff import naive_diff
from ..provenance.query import provenance_query
from ..provenance.tree import ProvenanceTree
from ..replay.execution import Execution

__all__ = ["Scenario"]


class Scenario:
    """Base class for diagnostic scenarios."""

    name: str = "scenario"
    description: str = ""
    # False for scenarios that run under a non-zero fault plan; the
    # fault-free invariant sweep skips those.
    fault_free: bool = True

    def __init__(self, **params):
        self.params = params
        self.program: Optional[Program] = None
        self.good_execution: Optional[Execution] = None
        self.bad_execution: Optional[Execution] = None
        self.good_event: Optional[Tuple] = None
        self.bad_event: Optional[Tuple] = None
        self.good_time: Optional[int] = None
        self.bad_time: Optional[int] = None
        self._built = False

    @classmethod
    def one_liner(cls) -> str:
        """The scenario's one-line description for listings.

        Prefers the class ``description`` attribute; falls back to the
        first line of the class docstring so a scenario without one
        never lists as an empty row.
        """
        if cls.description:
            return cls.description
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        """The scenario's fault plan (``faults`` param), parsed if a spec."""
        plan = self.params.get("faults")
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        return plan

    # -- lifecycle -----------------------------------------------------------

    def build(self) -> None:
        """Construct executions and events; set the attributes above."""
        raise NotImplementedError

    def setup(self) -> "Scenario":
        if not self._built:
            self.build()
            self._check_built()
            self._apply_engine()
            self._built = True
        return self

    def _apply_engine(self) -> None:
        """Apply the ``engine`` param to both executions post-build.

        Scenarios accept ``engine=`` (an EngineConfig, backend name, or
        mapping) without per-scenario plumbing: the config is assigned
        after the executions are built, so every diagnostic replay —
        where all the work happens — runs under it.  Backends are
        byte-identical in results, so applying post-build changes cost
        only.
        """
        engine = self.params.get("engine")
        if engine is None:
            return
        config = EngineConfig.coerce(engine)
        for execution in (self.good_execution, self.bad_execution):
            if hasattr(execution, "engine_config"):
                execution.engine_config = config

    def _check_built(self) -> None:
        missing = [
            attr
            for attr in (
                "program",
                "good_execution",
                "bad_execution",
                "good_event",
                "bad_event",
            )
            if getattr(self, attr) is None
        ]
        if missing:
            raise ReproError(
                f"scenario {self.name!r} did not set: {', '.join(missing)}"
            )

    # -- the three diagnostic techniques ---------------------------------------

    def trees(self) -> PyTuple[ProvenanceTree, ProvenanceTree]:
        """The good and bad provenance trees (classic 'Y!' queries)."""
        self.setup()
        good = provenance_query(
            self.good_execution.graph, self.good_event, self.good_time
        )
        bad = provenance_query(
            self.bad_execution.graph, self.bad_event, self.bad_time
        )
        return good, bad

    def plain_diff_size(self) -> int:
        """Size of the naive tree diff (the Section 2.5 strawman)."""
        good, bad = self.trees()
        return len(naive_diff(good, bad))

    def diagnose(self, options: Optional[DiffProvOptions] = None) -> DiagnosisReport:
        """Run DiffProv on the scenario's good/bad events.

        A scenario-level fault plan is threaded into the options (when
        the caller did not set one), so fault-enabled scenarios get the
        degraded query path without per-call plumbing.
        """
        self.setup()
        plan = self.fault_plan
        if plan is not None and (options is None or options.faults is None):
            options = options or DiffProvOptions()
            options.faults = plan
        debugger = DiffProv(self.program, options)
        return debugger.diagnose(
            self.good_execution,
            self.bad_execution,
            self.good_event,
            self.bad_event,
            self.good_time,
            self.bad_time,
        )

    def table1_row(self, options: Optional[DiffProvOptions] = None) -> Dict:
        """The scenario's row of Table 1."""
        good, bad = self.trees()
        report = self.diagnose(options)
        return {
            "scenario": self.name,
            "good_tree": good.size(),
            "bad_tree": bad.size(),
            "plain_diff": self.plain_diff_size(),
            "diffprov": report.num_changes,
            "diffprov_per_round": report.changes_per_round,
            "success": report.success,
            "report": report,
        }

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"
