"""A small SDN controller: policies compiled to per-switch flow entries.

The controller plays the role of the paper's controller program: given
a policy ("traffic from prefix A to prefix B egresses at host H, with
priority P"), it computes the forwarding path over the topology and
installs one flow entry per on-path switch.  Scenario faults are
injected by giving the controller a *wrong* policy (e.g. the overly
specific ``4.3.2.0/24`` of SDN1) — exactly how the corresponding
operator mistakes arise in practice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..addresses import Prefix
from ..datalog.tuples import Tuple
from ..errors import ReproError
from . import model
from .topology import Topology

__all__ = ["PolicyRule", "Controller"]

ANY = Prefix("0.0.0.0/0")


class PolicyRule:
    """One forwarding policy, to be compiled along a path."""

    __slots__ = ("name", "src_pfx", "dst_pfx", "priority", "egress_host", "via")

    def __init__(
        self,
        name: str,
        egress_host: str,
        priority: int = 1,
        src_pfx=ANY,
        dst_pfx=ANY,
        via: Optional[Sequence[str]] = None,
    ):
        self.name = name
        self.src_pfx = Prefix(src_pfx)
        self.dst_pfx = Prefix(dst_pfx)
        self.priority = priority
        self.egress_host = egress_host
        self.via = list(via) if via is not None else None

    def __repr__(self):
        return (
            f"PolicyRule({self.name!r}, {self.src_pfx}->{self.dst_pfx} "
            f"=> {self.egress_host}, prio={self.priority})"
        )


class Controller:
    """Compiles policies to flow entries over a topology."""

    def __init__(self, topology: Topology):
        self.topology = topology

    def path_for(self, policy: PolicyRule, ingress: str) -> List[str]:
        """The switch path from ingress to the policy's egress switch."""
        egress_switch, _ = self.topology.attachment(policy.egress_host)
        if policy.via:
            path = [ingress]
            current = ingress
            for waypoint in list(policy.via) + [egress_switch]:
                segment = self.topology.shortest_path(current, waypoint)
                path.extend(segment[1:])
                current = waypoint
            return path
        return self.topology.shortest_path(ingress, egress_switch)

    def entries_for(self, policy: PolicyRule, ingress: str) -> List[Tuple]:
        """One flow entry per switch on the policy's path."""
        path = self.path_for(policy, ingress)
        for node in path:
            if not self.topology.is_switch(node):
                raise ReproError(f"path node {node!r} is not a switch")
        entries: List[Tuple] = []
        egress_switch, egress_port = self.topology.attachment(policy.egress_host)
        for index, switch in enumerate(path):
            if switch == egress_switch:
                action = egress_port
            else:
                action = self.topology.port(switch, path[index + 1])
            entries.append(
                model.flow_entry(
                    switch, policy.priority, policy.src_pfx, policy.dst_pfx, action
                )
            )
        return entries

    def install(self, execution, policy: PolicyRule, ingress: str) -> List[Tuple]:
        """Install a policy's entries into a running execution."""
        entries = self.entries_for(policy, ingress)
        for entry in entries:
            execution.insert(entry, mutable=True)
        return entries
