"""The declarative model of an OpenFlow network (Section 3.1).

Switch state and events are tuples; the match-action pipeline is three
derivation rules:

- ``fwd`` — flow table lookup: among all entries matching the packet's
  source and destination, select the best (highest priority, then most
  specific) and emit its action;
- ``out`` — a non-negative action is a physical output port;
- ``outg`` — a negative action names a group: the packet is emitted on
  every port of the group (multicast/mirroring).  A negative action
  with no group entries is a drop.

Packets move along ``link`` tuples and are delivered to hosts via
``hostAt``.  Flow entries and group entries are *mutable* base tuples
(the operator controls the configuration); packets and wiring are
*immutable* (Section 3.3, refinement #1).
"""

from __future__ import annotations

from ..addresses import IPv4Address, Prefix
from ..datalog.parser import parse_program
from ..datalog.rules import Program
from ..datalog.tuples import Tuple

__all__ = [
    "SDN_PROGRAM_TEXT",
    "sdn_program",
    "packet",
    "flow_entry",
    "group_entry",
    "link",
    "host_at",
    "delivered",
    "DROP_ACTION",
]

# A negative action with no group entries: the packet is dropped.
DROP_ACTION = -999

SDN_PROGRAM_TEXT = """
// -- state and event tables --------------------------------------------
table packet(Sw, Pkt, Src, Dst) event immutable.
table flowEntry(Sw, Prio, SrcPfx, DstPfx, Action) mutable.
table groupEntry(Sw, Group, Port) mutable.
table link(Sw, Port, Next) immutable.
table hostAt(Sw, Port, Host) immutable.
table actionOut(Sw, Pkt, Src, Dst, Action) event.
table packetOut(Sw, Pkt, Src, Dst, Port) event.
table delivered(Host, Pkt, Src, Dst).
// Observed only by the black-box emulator (the engine has no negation,
// so it cannot derive absence-of-forwarding itself).
table dropped(Sw, Pkt, Src, Dst).

// -- the OpenFlow match-action pipeline --------------------------------
fwd actionOut(@S, P, Src, Dst, Action) :- packet(@S, P, Src, Dst),
    flowEntry(@S, Prio, SrcPfx, DstPfx, Action)
        argmax<Prio, prefix_len(SrcPfx) + prefix_len(DstPfx)>,
    ip_in_prefix(Src, SrcPfx) == true,
    ip_in_prefix(Dst, DstPfx) == true.

out packetOut(@S, P, Src, Dst, Port) :- actionOut(@S, P, Src, Dst, Action),
    Action >= 0, Port := Action.

outg packetOut(@S, P, Src, Dst, Port) :- actionOut(@S, P, Src, Dst, Action),
    Action < 0, groupEntry(@S, Action, Port).

// -- packet movement and delivery --------------------------------------
move packet(@N, P, Src, Dst) :- packetOut(@S, P, Src, Dst, Port),
    link(@S, Port, N).

recv delivered(@H, P, Src, Dst) :- packetOut(@S, P, Src, Dst, Port),
    hostAt(@S, Port, H).
"""


def sdn_program() -> Program:
    """A fresh copy of the SDN program (programs are mutable)."""
    return parse_program(SDN_PROGRAM_TEXT)


# -- tuple constructors --------------------------------------------------


def packet(switch: str, pkt_id: int, src, dst) -> Tuple:
    """A packet arriving at a switch (an immutable base event)."""
    return Tuple("packet", [switch, pkt_id, IPv4Address(src), IPv4Address(dst)])


def flow_entry(switch: str, priority: int, src_pfx, dst_pfx, action: int) -> Tuple:
    """An OpenFlow rule: match on src/dst prefixes, emit an action."""
    return Tuple(
        "flowEntry",
        [switch, priority, Prefix(src_pfx), Prefix(dst_pfx), action],
    )


def group_entry(switch: str, group: int, port: int) -> Tuple:
    """One output port of a (negative-numbered) group."""
    if group >= 0:
        raise ValueError("group ids are negative by convention")
    return Tuple("groupEntry", [switch, group, port])


def link(switch: str, port: int, next_switch: str) -> Tuple:
    return Tuple("link", [switch, port, next_switch])


def host_at(switch: str, port: int, host: str) -> Tuple:
    return Tuple("hostAt", [switch, port, host])


def delivered(host: str, pkt_id: int, src, dst) -> Tuple:
    """The terminal event: a packet reached a host."""
    return Tuple(
        "delivered", [host, pkt_id, IPv4Address(src), IPv4Address(dst)]
    )
