"""Network topologies: switches, hosts, links, and port assignment.

A :class:`Topology` is a thin wrapper over a :mod:`networkx` graph that
assigns port numbers deterministically and emits the immutable wiring
base tuples (``link``, ``hostAt``) for the declarative model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple as PyTuple

import networkx as nx

from ..addresses import IPv4Address
from ..datalog.tuples import Tuple
from ..errors import ReproError
from . import model

__all__ = ["Topology"]


class Topology:
    """A switch/host topology with deterministic port numbering."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self.graph = nx.Graph()
        self._ports: Dict[str, int] = {}  # next free port per switch
        self._port_map: Dict[PyTuple[str, str], int] = {}
        self._host_ips: Dict[str, IPv4Address] = {}

    # -- construction ------------------------------------------------------

    def add_switch(self, name: str) -> str:
        if name in self.graph:
            raise ReproError(f"duplicate node {name!r}")
        self.graph.add_node(name, kind="switch")
        self._ports[name] = 1
        return name

    def add_host(self, name: str, ip) -> str:
        if name in self.graph:
            raise ReproError(f"duplicate node {name!r}")
        self.graph.add_node(name, kind="host")
        self._host_ips[name] = IPv4Address(ip)
        return name

    def add_link(self, a: str, b: str) -> None:
        """Connect two nodes, assigning a port on each switch side."""
        for node in (a, b):
            if node not in self.graph:
                raise ReproError(f"unknown node {node!r}")
        self.graph.add_edge(a, b)
        if self.is_switch(a):
            self._port_map[(a, b)] = self._ports[a]
            self._ports[a] += 1
        if self.is_switch(b):
            self._port_map[(b, a)] = self._ports[b]
            self._ports[b] += 1

    # -- lookups -----------------------------------------------------------

    def is_switch(self, name: str) -> bool:
        return self.graph.nodes[name].get("kind") == "switch"

    def is_host(self, name: str) -> bool:
        return self.graph.nodes[name].get("kind") == "host"

    def port(self, switch: str, neighbor: str) -> int:
        """The port on ``switch`` that leads to ``neighbor``."""
        try:
            return self._port_map[(switch, neighbor)]
        except KeyError:
            raise ReproError(f"no link {switch!r} -> {neighbor!r}") from None

    def host_ip(self, host: str) -> IPv4Address:
        try:
            return self._host_ips[host]
        except KeyError:
            raise ReproError(f"unknown host {host!r}") from None

    def switches(self) -> List[str]:
        return sorted(n for n in self.graph if self.is_switch(n))

    def hosts(self) -> List[str]:
        return sorted(n for n in self.graph if self.is_host(n))

    def neighbors(self, name: str) -> List[str]:
        return sorted(self.graph.neighbors(name))

    def shortest_path(self, a: str, b: str) -> List[str]:
        return nx.shortest_path(self.graph, a, b)

    def attachment(self, host: str) -> PyTuple[str, int]:
        """The (switch, port) a host hangs off."""
        for neighbor in self.graph.neighbors(host):
            if self.is_switch(neighbor):
                return neighbor, self.port(neighbor, host)
        raise ReproError(f"host {host!r} is not attached to a switch")

    # -- base tuples ---------------------------------------------------------

    def wiring_tuples(self) -> List[Tuple]:
        """The immutable ``link`` and ``hostAt`` base tuples."""
        tuples: List[Tuple] = []
        for switch in self.switches():
            for neighbor in self.neighbors(switch):
                port = self.port(switch, neighbor)
                if self.is_switch(neighbor):
                    tuples.append(model.link(switch, port, neighbor))
                else:
                    tuples.append(model.host_at(switch, port, neighbor))
        return tuples

    def __repr__(self):
        return (
            f"Topology({self.name!r}, {len(self.switches())} switches, "
            f"{len(self.hosts())} hosts)"
        )
