"""A declarative SDN controller: flow entries derived from policies.

In the paper's setting the controller program is itself part of the
provenance: "when applied to a software-defined network, [the
provenance system] might associate each flow entry with the parts of
the controller program that were used to compute it" (Section 1).  The
plain :mod:`repro.sdn.model` treats flow entries as base configuration;
this module adds the controller layer on top, so entries are *derived*:

    policy(PName, Prio, SrcPfx, DstPfx, Host)   -- operator intent (mutable)
    nextHop(Sw, Host, Port)                     -- routing substrate (immutable,
                                                   computed from the wiring)
    inst flowEntry(...) :- policy(...), nextHop(...)

With this layer, DiffProv's diagnoses land on the *policy* — the
operator's actual mistake — rather than on the individual entries it
compiled to: repairing a flow-entry field propagates down through the
``inst`` rule, and a hijacking entry's removal is traced to the policy
that derived it.
"""

from __future__ import annotations

from typing import List

from ..addresses import Prefix
from ..datalog.parser import parse_program
from ..datalog.rules import Program
from ..datalog.tuples import Tuple
from .model import SDN_PROGRAM_TEXT
from .topology import Topology

__all__ = [
    "CONTROLLER_PROGRAM_TEXT",
    "controller_program",
    "policy",
    "next_hop",
    "next_hop_tuples",
]

CONTROLLER_PROGRAM_TEXT = SDN_PROGRAM_TEXT + """
// -- the controller layer ----------------------------------------------
table policy(PName, Prio, SrcPfx, DstPfx, Host) mutable.
table nextHop(Sw, Host, Port) immutable.

inst flowEntry(Sw, Prio, SrcPfx, DstPfx, Port) :-
    policy(PName, Prio, SrcPfx, DstPfx, Host),
    nextHop(Sw, Host, Port).
"""


def controller_program() -> Program:
    """The SDN program extended with the controller layer."""
    return parse_program(CONTROLLER_PROGRAM_TEXT)


def policy(name: str, priority: int, src_pfx, dst_pfx, host: str) -> Tuple:
    """One operator policy: route matching traffic towards a host."""
    return Tuple(
        "policy", [name, priority, Prefix(src_pfx), Prefix(dst_pfx), host]
    )


def next_hop(switch: str, host: str, port: int) -> Tuple:
    return Tuple("nextHop", [switch, host, port])


def next_hop_tuples(topo: Topology) -> List[Tuple]:
    """The routing substrate: each switch's port towards each host.

    Computed over shortest paths in the wiring — this is network
    mechanics, not operator intent, so the tuples are immutable.
    """
    tuples: List[Tuple] = []
    for host in topo.hosts():
        attach_switch, attach_port = topo.attachment(host)
        for switch in topo.switches():
            if switch == attach_switch:
                tuples.append(next_hop(switch, host, attach_port))
                continue
            path = topo.shortest_path(switch, attach_switch)
            port = topo.port(switch, path[1])
            tuples.append(next_hop(switch, host, port))
    return tuples
