"""Flow tables with efficient OpenFlow best-match lookup.

The declarative engine's argmax selector is fine for nine-switch
scenarios, but the Section 6.7 network carries hundreds of thousands of
forwarding entries; the emulator therefore keeps each switch's table in
a binary trie over the destination prefix, so a lookup touches only the
entries on the address's trie path.  Semantics are identical to the
declarative model: highest priority wins, ties broken by combined
prefix specificity, then by a stable tuple order.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..addresses import IPv4Address, Prefix
from ..datalog.state import sort_key
from ..datalog.tuples import Tuple
from ..errors import ReproError
from . import model

__all__ = ["FlowTable", "PrefixTrie"]


class _TrieNode:
    __slots__ = ("zero", "one", "values")

    def __init__(self):
        self.zero: Optional[_TrieNode] = None
        self.one: Optional[_TrieNode] = None
        self.values: List[object] = []


class PrefixTrie:
    """A binary trie mapping prefixes to values."""

    def __init__(self):
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, pfx: Prefix, value) -> None:
        node = self._walk(pfx, create=True)
        node.values.append(value)
        self._size += 1

    def remove(self, pfx: Prefix, value) -> bool:
        node = self._walk(pfx, create=False)
        if node is None or value not in node.values:
            return False
        node.values.remove(value)
        self._size -= 1
        return True

    def covering(self, addr: IPv4Address) -> Iterator[object]:
        """All values whose prefix contains the address (root first)."""
        node = self._root
        bits = addr.value
        depth = 0
        while node is not None:
            yield from node.values
            if depth == 32:
                return
            bit = (bits >> (31 - depth)) & 1
            node = node.one if bit else node.zero
            depth += 1

    def _walk(self, pfx: Prefix, create: bool) -> Optional[_TrieNode]:
        node = self._root
        bits = pfx.network.value
        for depth in range(pfx.length):
            bit = (bits >> (31 - depth)) & 1
            child = node.one if bit else node.zero
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                if bit:
                    node.one = child
                else:
                    node.zero = child
            node = child
        return node


class FlowTable:
    """One switch's flow entries, indexed by destination prefix."""

    def __init__(self, switch: str):
        self.switch = switch
        self._trie = PrefixTrie()
        self._entries = set()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry: Tuple) -> bool:
        return entry in self._entries

    def entries(self) -> List[Tuple]:
        return sorted(self._entries, key=sort_key)

    def install(self, entry: Tuple) -> None:
        """Install a ``flowEntry`` tuple (as built by repro.sdn.model)."""
        if entry.table != "flowEntry" or entry.arity != 5:
            raise ReproError(f"not a flow entry: {entry}")
        if entry.args[0] != self.switch:
            raise ReproError(
                f"entry {entry} belongs to {entry.args[0]!r}, "
                f"not {self.switch!r}"
            )
        if entry in self._entries:
            return
        self._entries.add(entry)
        self._trie.insert(entry.args[3], entry)

    def uninstall(self, entry: Tuple) -> bool:
        if entry not in self._entries:
            return False
        self._entries.discard(entry)
        self._trie.remove(entry.args[3], entry)
        return True

    def best_match(self, src: IPv4Address, dst: IPv4Address) -> Optional[Tuple]:
        """The entry an OpenFlow switch would apply to this packet.

        Highest priority first; ties broken by combined prefix length,
        then by the stable tuple order — exactly the argmax selector of
        the declarative model, so engine and emulator always agree.
        """
        best = None
        best_key = None
        for entry in self._trie.covering(dst):
            _, priority, src_pfx, dst_pfx, _ = entry.args
            if not src_pfx.contains(src):
                continue
            key = (priority, src_pfx.length + dst_pfx.length, sort_key(entry))
            if best_key is None or key > best_key:
                best_key = key
                best = entry
        return best
