"""Flow tables with efficient OpenFlow best-match lookup.

The declarative engine's argmax selector is fine for nine-switch
scenarios, but the Section 6.7 network carries hundreds of thousands of
forwarding entries; the emulator therefore keeps each switch's table in
a binary trie over the destination prefix, so a lookup touches only the
entries on the address's trie path.  Semantics are identical to the
declarative model: highest priority wins, ties broken by combined
prefix specificity, then by a stable tuple order.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..addresses import IPv4Address, Prefix
from ..datalog.state import sort_key
from ..datalog.tuples import Tuple
from ..errors import ReproError
from . import model

__all__ = ["FlowTable", "PrefixTrie"]


class _TrieNode:
    __slots__ = ("zero", "one", "values")

    def __init__(self):
        self.zero: Optional[_TrieNode] = None
        self.one: Optional[_TrieNode] = None
        self.values: List[object] = []


class PrefixTrie:
    """A binary trie mapping prefixes to values."""

    def __init__(self):
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, pfx: Prefix, value) -> None:
        node = self._walk(pfx, create=True)
        node.values.append(value)
        self._size += 1

    def remove(self, pfx: Prefix, value) -> bool:
        node = self._walk(pfx, create=False)
        if node is None or value not in node.values:
            return False
        node.values.remove(value)
        self._size -= 1
        return True

    def covering(self, addr: IPv4Address) -> Iterator[object]:
        """All values whose prefix contains the address (root first)."""
        node = self._root
        bits = addr.value
        depth = 0
        while node is not None:
            yield from node.values
            if depth == 32:
                return
            bit = (bits >> (31 - depth)) & 1
            node = node.one if bit else node.zero
            depth += 1

    def _walk(self, pfx: Prefix, create: bool) -> Optional[_TrieNode]:
        node = self._root
        bits = pfx.network.value
        for depth in range(pfx.length):
            bit = (bits >> (31 - depth)) & 1
            child = node.one if bit else node.zero
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                if bit:
                    node.one = child
                else:
                    node.zero = child
            node = child
        return node


class FlowTable:
    """One switch's flow entries, indexed by destination prefix.

    A table can be *forked* (:meth:`fork`): the child shares the
    parent's trie read-only and keeps its own overlay (locally
    installed entries plus a mask of removed parent entries).  Forking
    is O(1) regardless of table size, which is what makes per-candidate
    replays over the 757k-entry Stanford configuration affordable — a
    candidate change touches a handful of entries, so copying the other
    757k per replay was pure waste.  The parent must not be mutated
    while forks are alive (replays never mutate the base
    configuration).

    ``linear_scan=True`` disables the trie on lookup and scans every
    entry — the reference mode the equivalence tests compare against.
    """

    def __init__(self, switch: str, base: Optional["FlowTable"] = None):
        self.switch = switch
        self._trie = PrefixTrie()
        self._entries = set()
        # Copy-on-write parent and the mask of its entries this fork
        # has uninstalled.
        self._base = base
        self._removed = set()
        self.linear_scan = False if base is None else base.linear_scan
        # (src, dst) -> winning entry.  The emulator and the
        # reconstructor both ask best_match for every hop of every
        # packet, and application flows repeat the same pair thousands
        # of times; any mutation invalidates the memo.
        self._match_cache = {}

    def fork(self) -> "FlowTable":
        """An O(1) copy-on-write view of this table."""
        return FlowTable(self.switch, base=self)

    def __len__(self) -> int:
        size = len(self._entries)
        if self._base is not None:
            size += len(self._base) - len(self._removed)
        return size

    def __contains__(self, entry: Tuple) -> bool:
        if entry in self._entries:
            return True
        return (
            self._base is not None
            and entry not in self._removed
            and entry in self._base
        )

    def _iter_entries(self) -> Iterator[Tuple]:
        yield from self._entries
        if self._base is not None:
            for entry in self._base._iter_entries():
                if entry not in self._removed:
                    yield entry

    def entries(self) -> List[Tuple]:
        return sorted(self._iter_entries(), key=sort_key)

    def install(self, entry: Tuple) -> None:
        """Install a ``flowEntry`` tuple (as built by repro.sdn.model)."""
        if entry.table != "flowEntry" or entry.arity != 5:
            raise ReproError(f"not a flow entry: {entry}")
        if entry.args[0] != self.switch:
            raise ReproError(
                f"entry {entry} belongs to {entry.args[0]!r}, "
                f"not {self.switch!r}"
            )
        if entry in self:
            return
        self._match_cache.clear()
        if entry in self._removed:
            # Reinstalling a masked parent entry just unmasks it.
            self._removed.discard(entry)
            return
        self._entries.add(entry)
        self._trie.insert(entry.args[3], entry)

    def uninstall(self, entry: Tuple) -> bool:
        if entry in self._entries:
            self._match_cache.clear()
            self._entries.discard(entry)
            self._trie.remove(entry.args[3], entry)
            return True
        if (
            self._base is not None
            and entry not in self._removed
            and entry in self._base
        ):
            self._match_cache.clear()
            self._removed.add(entry)
            return True
        return False

    def _covering(self, dst: IPv4Address) -> Iterator[Tuple]:
        """Entries whose destination prefix contains ``dst``, overlay
        plus the (masked) parent chain."""
        yield from self._trie.covering(dst)
        if self._base is not None:
            for entry in self._base._covering(dst):
                if entry not in self._removed:
                    yield entry

    def best_match(self, src: IPv4Address, dst: IPv4Address) -> Optional[Tuple]:
        """The entry an OpenFlow switch would apply to this packet.

        Highest priority first; ties broken by combined prefix length,
        then by the stable tuple order — exactly the argmax selector of
        the declarative model, so engine and emulator always agree.
        The argmax is order-independent, so the trie path, the forked
        overlay chain, and the linear reference scan always agree too.
        """
        cache_key = (src.value, dst.value)
        try:
            return self._match_cache[cache_key]
        except KeyError:
            pass
        best = None
        best_key = None
        if self.linear_scan:
            candidates = (
                entry for entry in self._iter_entries()
                if entry.args[3].contains(dst)
            )
        else:
            candidates = self._covering(dst)
        for entry in candidates:
            _, priority, src_pfx, dst_pfx, _ = entry.args
            if not src_pfx.contains(src):
                continue
            key = (priority, src_pfx.length + dst_pfx.length, sort_key(entry))
            if best_key is None or key > best_key:
                best_key = key
                best = entry
        self._match_cache[cache_key] = best
        return best
