"""Black-box switch emulation with external-specification provenance.

This is the Mininet/Open vSwitch stand-in for the complex-network
scenario (Section 6.7).  The primary system is a plain packet
forwarder: switches hold :class:`~repro.sdn.flowtable.FlowTable`\\ s,
packets hop along links, and every event is captured in a pcap-like
trace.  The system reports nothing about *why* it forwarded a packet.

Provenance is instead reconstructed by
:class:`ExternalSpecReconstructor` from (a) the captured traces, (b)
the switch configurations, and (c) an external specification of
OpenFlow's match-action behaviour — the same best-match function the
spec says a switch must apply.  The reconstructed derivations use the
rule vocabulary of the declarative model, so DiffProv reasons about
emulated networks exactly as it does about engine-run ones.
"""

from __future__ import annotations

import time as _time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from ..addresses import IPv4Address
from ..datalog.config import EngineConfig
from ..datalog.state import sort_key
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..faults import FaultInjector
from ..provenance.graph import ProvenanceGraph
from ..provenance.recorder import ProvenanceRecorder
from ..replay.log import PACKET_RECORD_BYTES, EventLog
from ..replay.replayer import Change
from . import model
from .flowtable import FlowTable
from .topology import Topology

__all__ = [
    "NetworkConfig",
    "TraceEvent",
    "EmulatedNetwork",
    "ExternalSpecReconstructor",
    "EmulatedNetworkExecution",
]

_TTL = 64


class NetworkConfig:
    """The data-plane configuration: flow tables, groups, wiring."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.tables: Dict[str, FlowTable] = {
            switch: FlowTable(switch) for switch in topology.switches()
        }
        self.groups: Dict[PyTuple[str, int], List[int]] = {}
        self._group_tuples: Set[Tuple] = set()

    def install(self, tup: Tuple) -> None:
        if tup.table == "flowEntry":
            self.tables[tup.args[0]].install(tup)
        elif tup.table == "groupEntry":
            switch, group_id, port = tup.args
            ports = self.groups.setdefault((switch, group_id), [])
            if port not in ports:
                ports.append(port)
                ports.sort()
            self._group_tuples.add(tup)
        else:
            raise ReproError(f"cannot install {tup} into the data plane")

    def uninstall(self, tup: Tuple) -> None:
        if tup.table == "flowEntry":
            self.tables[tup.args[0]].uninstall(tup)
        elif tup.table == "groupEntry":
            switch, group_id, port = tup.args
            ports = self.groups.get((switch, group_id), [])
            if port in ports:
                ports.remove(port)
            self._group_tuples.discard(tup)
        else:
            raise ReproError(f"cannot uninstall {tup}")

    def apply_changes(self, changes: Iterable[Change]) -> None:
        for change in changes:
            for removed in change.remove:
                self.uninstall(removed)
            if change.insert is not None:
                self.install(change.insert)

    def clone(self) -> "NetworkConfig":
        copy = NetworkConfig(self.topology)
        for switch in sorted(self.tables):
            for entry in self.tables[switch].entries():
                copy.install(entry)
        # group_tuples() sorts; iterating the raw set here would seed the
        # clone in hash order, which varies across processes.
        for tup in self.group_tuples():
            copy.install(tup)
        return copy

    def fork(self) -> "NetworkConfig":
        """An O(switches) copy-on-write view of this configuration.

        Flow tables are forked (:meth:`FlowTable.fork`), so the 757k
        shared entries are never copied — only the handful a candidate
        change touches land in the fork's overlays.  Groups and wiring
        are small and copied outright.  The base configuration must not
        be mutated while forks are alive; replays never do.
        """
        copy = NetworkConfig.__new__(NetworkConfig)
        copy.topology = self.topology
        copy.tables = {
            switch: table.fork() for switch, table in self.tables.items()
        }
        copy.groups = {
            key: list(ports) for key, ports in self.groups.items()
        }
        copy._group_tuples = set(self._group_tuples)
        return copy

    def has_tuple(self, tup: Tuple) -> bool:
        """O(1) membership for installable (flow/group) tuples."""
        if tup.table == "flowEntry":
            table = self.tables.get(tup.args[0])
            return table is not None and tup in table
        if tup.table == "groupEntry":
            return tup in self._group_tuples
        return False

    def iter_flow_entries(self) -> Iterable[Tuple]:
        """Stream every flow entry (switches in sorted order).

        Avoids materializing the combined entry list — at full scale
        that is a 757k-element list — while each switch's own sorted
        view stays a transient per-table buffer.
        """
        for switch in sorted(self.tables):
            yield from self.tables[switch].entries()

    def flow_entries(self) -> List[Tuple]:
        return list(self.iter_flow_entries())

    def group_tuples(self) -> List[Tuple]:
        return sorted(self._group_tuples, key=sort_key)

    def total_entries(self) -> int:
        return sum(len(table) for table in self.tables.values())


class TraceEvent:
    """One pcap-like record: a packet seen at a switch."""

    __slots__ = ("kind", "switch", "pkt", "src", "dst", "port", "time")

    def __init__(self, kind, switch, pkt, src, dst, port, time):
        self.kind = kind  # 'in' | 'out' | 'deliver' | 'drop' | 'lost'
        self.switch = switch
        self.pkt = pkt
        self.src = src
        self.dst = dst
        self.port = port
        self.time = time

    def __repr__(self):
        return (
            f"TraceEvent({self.kind} pkt={self.pkt} @{self.switch}"
            f"{f':{self.port}' if self.port is not None else ''} t={self.time})"
        )


class EmulatedNetwork:
    """The primary system: a deterministic hop-by-hop packet forwarder.

    An optional :class:`~repro.faults.FaultInjector` adds switch
    crash-restart windows and link flaps/loss: a packet reaching a
    crashed switch, or traversing a downed link, records a ``lost``
    trace event (which the reconstructor ignores) instead of
    progressing.  Times passed to the injector are trace-clock ticks.
    """

    def __init__(self, config: NetworkConfig, faults=None):
        self.config = config
        self.faults = faults
        self.traces: List[TraceEvent] = []
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def inject(self, switch: str, pkt: int, src, dst) -> None:
        """Inject a packet at an ingress switch and forward it to rest."""
        src = IPv4Address(src)
        dst = IPv4Address(dst)
        worklist = [(switch, _TTL)]
        while worklist:
            here, ttl = worklist.pop(0)
            if self.faults is not None and not self.faults.switch_alive(
                here, self._clock + 1
            ):
                self.traces.append(
                    TraceEvent("lost", here, pkt, src, dst, None, self._tick())
                )
                continue
            self.traces.append(
                TraceEvent("in", here, pkt, src, dst, None, self._tick())
            )
            if ttl <= 0:
                self.traces.append(
                    TraceEvent("drop", here, pkt, src, dst, None, self._tick())
                )
                continue
            entry = self.config.tables[here].best_match(src, dst)
            if entry is None:
                self.traces.append(
                    TraceEvent("drop", here, pkt, src, dst, None, self._tick())
                )
                continue
            action = entry.args[4]
            if action >= 0:
                ports = [action]
            else:
                ports = self.config.groups.get((here, action), [])
            if not ports:
                self.traces.append(
                    TraceEvent("drop", here, pkt, src, dst, None, self._tick())
                )
                continue
            for port in ports:
                if self.faults is not None and not self.faults.link_up(
                    here, port, self._clock + 1
                ):
                    self.traces.append(
                        TraceEvent(
                            "lost", here, pkt, src, dst, port, self._tick()
                        )
                    )
                    continue
                self.traces.append(
                    TraceEvent("out", here, pkt, src, dst, port, self._tick())
                )
                neighbor = self._neighbor_on(here, port)
                if neighbor is None:
                    self.traces.append(
                        TraceEvent("drop", here, pkt, src, dst, port, self._tick())
                    )
                elif self.config.topology.is_host(neighbor):
                    self.traces.append(
                        TraceEvent(
                            "deliver", here, pkt, src, dst, port, self._tick()
                        )
                    )
                else:
                    worklist.append((neighbor, ttl - 1))

    def _neighbor_on(self, switch: str, port: int) -> Optional[str]:
        for neighbor in self.config.topology.neighbors(switch):
            if self.config.topology.port(switch, neighbor) == port:
                return neighbor
        return None


class ExternalSpecReconstructor:
    """Rebuilds provenance from traces + configuration + the OpenFlow spec.

    The emulator is a black box; the reconstructor re-derives *why* each
    trace event happened by applying the specification (best-match over
    the configured tables) to each packet arrival, and reports the
    resulting derivations.  Base tuples (wiring, flow entries) are
    reported lazily, the first time a derivation depends on them, which
    keeps the graph proportional to the traffic rather than to the
    757k-entry configuration.
    """

    def __init__(self, config: NetworkConfig, faults=None):
        self.config = config
        self.recorder = ProvenanceRecorder(faults=faults)
        self._reported: Set[Tuple] = set()
        self._injected: Set[PyTuple] = set()

    @property
    def graph(self) -> ProvenanceGraph:
        return self.recorder.graph

    def reconstruct(self, traces: Sequence[TraceEvent], injected: Set[int]):
        """Consume a trace, building the provenance graph."""
        for event in traces:
            if event.kind == "in":
                self._on_arrival(event, injected)
            elif event.kind == "out":
                self._on_out(event)
            elif event.kind == "deliver":
                self._on_deliver(event)
            elif event.kind == "drop":
                self._on_drop(event)
            # 'lost' events (crashed switch, downed link) leave no
            # provenance: the packet's causal chain simply truncates.
        return self.recorder

    # -- spec application -----------------------------------------------------

    def _packet_tuple(self, event: TraceEvent) -> Tuple:
        return model.packet(event.switch, event.pkt, event.src, event.dst)

    def _on_arrival(self, event: TraceEvent, injected: Set[int]) -> None:
        pkt_tuple = self._packet_tuple(event)
        if (event.pkt, event.switch) not in self._injected:
            if event.pkt in injected and not self.graph.appears_of(pkt_tuple):
                # An external input: the immutable base event.
                self.recorder.report_insert(
                    event.switch, pkt_tuple, mutable=False
                )
                self._injected.add((event.pkt, event.switch))
        # The spec says which entry the switch must have applied.
        entry = self.config.tables[event.switch].best_match(event.src, event.dst)
        if entry is None:
            return
        self._ensure_base(entry, mutable=True)
        action = entry.args[4]
        action_out = Tuple(
            "actionOut",
            [event.switch, event.pkt, event.src, event.dst, action],
        )
        if self.graph.latest_open_exist(action_out) is None:
            self.recorder.report_derive(
                event.switch,
                action_out,
                "fwd",
                [pkt_tuple, entry],
                env={
                    "S": event.switch,
                    "P": event.pkt,
                    "Src": event.src,
                    "Dst": event.dst,
                    "Prio": entry.args[1],
                    "SrcPfx": entry.args[2],
                    "DstPfx": entry.args[3],
                    "Action": action,
                },
                trigger_index=0,
            )

    def _on_out(self, event: TraceEvent) -> None:
        switch = event.switch
        entry = self.config.tables[switch].best_match(event.src, event.dst)
        if entry is None:
            return
        action = entry.args[4]
        action_out = Tuple(
            "actionOut", [switch, event.pkt, event.src, event.dst, action]
        )
        packet_out = Tuple(
            "packetOut", [switch, event.pkt, event.src, event.dst, event.port]
        )
        env = {
            "S": switch,
            "P": event.pkt,
            "Src": event.src,
            "Dst": event.dst,
            "Action": action,
            "Port": event.port,
        }
        if action >= 0:
            self.recorder.report_derive(
                switch, packet_out, "out", [action_out], env=env, trigger_index=0
            )
        else:
            group_tuple = model.group_entry(switch, action, event.port)
            self._ensure_base(group_tuple, mutable=True)
            self.recorder.report_derive(
                switch,
                packet_out,
                "outg",
                [action_out, group_tuple],
                env=env,
                trigger_index=0,
            )
        neighbor = self._neighbor_on(switch, event.port)
        if neighbor is not None and self.config.topology.is_switch(neighbor):
            link_tuple = model.link(switch, event.port, neighbor)
            self._ensure_base(link_tuple, mutable=False)
            moved = model.packet(neighbor, event.pkt, event.src, event.dst)
            self.recorder.report_derive(
                neighbor,
                moved,
                "move",
                [packet_out, link_tuple],
                env={
                    "S": switch,
                    "P": event.pkt,
                    "Src": event.src,
                    "Dst": event.dst,
                    "Port": event.port,
                    "N": neighbor,
                },
                trigger_index=0,
            )

    def _on_deliver(self, event: TraceEvent) -> None:
        switch = event.switch
        host = self._neighbor_on(switch, event.port)
        if host is None:
            return
        host_tuple = model.host_at(switch, event.port, host)
        self._ensure_base(host_tuple, mutable=False)
        packet_out = Tuple(
            "packetOut", [switch, event.pkt, event.src, event.dst, event.port]
        )
        delivered = model.delivered(host, event.pkt, event.src, event.dst)
        self.recorder.report_derive(
            host,
            delivered,
            "recv",
            [packet_out, host_tuple],
            env={
                "S": switch,
                "P": event.pkt,
                "Src": event.src,
                "Dst": event.dst,
                "Port": event.port,
                "H": host,
            },
            trigger_index=0,
        )

    def _on_drop(self, event: TraceEvent) -> None:
        pkt_tuple = self._packet_tuple(event)
        dropped = Tuple(
            "dropped", [event.switch, event.pkt, event.src, event.dst]
        )
        entry = self.config.tables[event.switch].best_match(event.src, event.dst)
        if entry is not None:
            self._ensure_base(entry, mutable=True)
            body = [pkt_tuple, entry]
            rule = "drp"
        else:
            body = [pkt_tuple]
            rule = "nomatch"
        self.recorder.report_derive(
            event.switch, dropped, rule, body, trigger_index=0
        )

    def _ensure_base(self, tup: Tuple, mutable: bool) -> None:
        if tup in self._reported:
            return
        node = str(tup.args[0])
        self.recorder.report_insert(node, tup, mutable=mutable)
        self._reported.add(tup)

    def _neighbor_on(self, switch: str, port: int) -> Optional[str]:
        for neighbor in self.config.topology.neighbors(switch):
            if self.config.topology.port(switch, neighbor) == port:
                return neighbor
        return None


class _BaseRecord:
    is_base = True


_BASE_RECORD = _BaseRecord()


class _ConfigStoreView:
    """Store interface over the live data-plane configuration.

    Lets DiffProv's competitor/blocker searches see the *whole*
    configuration without materializing 757k base-tuple vertexes in the
    provenance graph.  The configuration is static for the lifetime of
    a replay result, so table listings and equality projections are
    cached, and membership goes straight to the flow tables' hash sets
    — the old per-call ``set(tuples(table))`` rebuild was O(n) per
    *lookup* at full scale.
    """

    _MUTABLE_TABLES = {"flowEntry", "groupEntry"}
    _CONFIG_TABLES = ("flowEntry", "groupEntry", "link", "hostAt")

    def __init__(self, config: NetworkConfig):
        self.config = config
        self._tuples_cache: Dict[str, List[Tuple]] = {}
        self._wiring: Optional[Set[Tuple]] = None
        # (table, position) -> value -> sorted tuples, built on demand
        # for DiffProv's narrowed candidate searches.
        self._projections: Dict[PyTuple[str, int], Dict] = {}
        # switch -> sorted flow entries (the hot flowEntry/switch case).
        self._per_switch: Dict[object, List[Tuple]] = {}

    @property
    def store(self):
        return self

    def tuples(self, table: str) -> List[Tuple]:
        cached = self._tuples_cache.get(table)
        if cached is None:
            if table == "flowEntry":
                cached = self.config.flow_entries()
            elif table == "groupEntry":
                cached = self.config.group_tuples()
            elif table in ("link", "hostAt"):
                cached = [
                    t for t in self.config.topology.wiring_tuples()
                    if t.table == table
                ]
            else:
                cached = []
            self._tuples_cache[table] = cached
        return cached

    def tuples_matching(self, table: str, position: int, value) -> List[Tuple]:
        """Equality projection, same contract as ``Store.tuples_matching``."""
        if table == "flowEntry" and position == 0:
            # DiffProv's candidate searches always pin the switch; the
            # per-switch flow table *is* that bucket, so serve it
            # directly instead of projecting all 757k entries once.
            bucket = self._per_switch.get(value)
            if bucket is None:
                flow_table = self.config.tables.get(value)
                bucket = [] if flow_table is None else flow_table.entries()
                self._per_switch[value] = bucket
            return list(bucket)
        projection = self._projections.get((table, position))
        if projection is None:
            projection = {}
            # tuples() is sorted, so every bucket is too.
            for tup in self.tuples(table):
                if position < tup.arity:
                    projection.setdefault(tup.args[position], []).append(tup)
            self._projections[(table, position)] = projection
        return list(projection.get(value, ()))

    def contains(self, tup: Tuple) -> bool:
        if tup.table in ("flowEntry", "groupEntry"):
            return self.config.has_tuple(tup)
        if tup.table in ("link", "hostAt"):
            if self._wiring is None:
                self._wiring = set(self.config.topology.wiring_tuples())
            return tup in self._wiring
        return False

    def record(self, tup: Tuple):
        return _BASE_RECORD if self.contains(tup) else None

    def is_mutable(self, tup: Tuple) -> bool:
        return tup.table in self._MUTABLE_TABLES


class _EmulationGraphView:
    """Provenance graph that also knows the configuration is alive.

    Base tuples are reported lazily (only when used), so existence
    checks fall back to the configuration for config/wiring tables.
    """

    def __init__(self, graph: ProvenanceGraph, store_view: _ConfigStoreView):
        self._graph = graph
        self._store_view = store_view

    def __getattr__(self, name):
        return getattr(self._graph, name)

    def alive_during(self, tup: Tuple, from_time: int) -> bool:
        if self._graph.alive_during(tup, from_time):
            return True
        return self._in_configuration(tup)

    def alive_at(self, tup: Tuple, time: int) -> bool:
        if self._graph.alive_at(tup, time):
            return True
        # The emulated configuration is static for a run, so an entry
        # present in it exists at every instant.
        return self._in_configuration(tup)

    def _in_configuration(self, tup: Tuple) -> bool:
        return self._store_view.contains(tup)


class EmulationReplayResult:
    """Replay result over the emulator: graph view + config store."""

    def __init__(self, recorder: ProvenanceRecorder, config: NetworkConfig):
        self.recorder = recorder
        self.engine = _ConfigStoreView(config)
        self.graph = _EmulationGraphView(recorder.graph, self.engine)

    def alive(self, tup: Tuple) -> bool:
        return self.graph.alive_during(tup, 0)


class EmulatedNetworkExecution:
    """A logged emulator run, replayable with base-tuple changes.

    The interface matches :class:`repro.replay.execution.Execution`, so
    DiffProv drives the emulator exactly like an engine execution: the
    log anchors the bad seed, and each UPDATETREE replays the packet
    schedule against a cloned, modified configuration.
    """

    def __init__(
        self,
        name: str,
        config: NetworkConfig,
        schedule: Sequence[PyTuple[str, int, object, object]],
        faults=None,
        engine: Optional[EngineConfig] = None,
    ):
        self.name = name
        self.base_config = config
        self.schedule = list(schedule)
        # Optional FaultPlan; every replay builds fresh injectors with
        # fixed purposes, so replays reproduce the same fault schedule.
        self.fault_plan = faults
        # Backend selection maps onto how each replay obtains its
        # configuration copy: compiled forks (O(1) copy-on-write),
        # indexed clones, reference clones and linear-scans lookups.
        self.engine_config = EngineConfig.coerce(engine)
        self.log = self._build_log()
        self._materialized: Optional[EmulationReplayResult] = None
        self.replay_count = 0
        self.replay_seconds = 0.0

    def _build_log(self) -> EventLog:
        log = EventLog()
        for tup in self.base_config.topology.wiring_tuples():
            log.append("insert", tup, mutable=False)
        for tup in self.base_config.iter_flow_entries():
            log.append("insert", tup, mutable=True)
        for tup in self.base_config.group_tuples():
            log.append("insert", tup, mutable=True)
        for switch, pkt, src, dst in self.schedule:
            log.append(
                "insert",
                model.packet(switch, pkt, src, dst),
                mutable=False,
                size=PACKET_RECORD_BYTES,
            )
        return log

    @property
    def graph(self):
        return self.materialize().graph

    def materialize(self) -> EmulationReplayResult:
        """The *persisted* provenance: the plan's logging loss applies."""
        if self._materialized is None:
            self._materialized = self._replay(lossless=False)
        return self._materialized

    def replay(
        self,
        changes: Iterable[Change] = (),
        anchor_index: Optional[int] = None,
    ) -> EmulationReplayResult:
        """Debugger-side replay: network faults reproduced, recording
        lossless (the packet schedule and configuration are ground
        truth, so reconstruction can always be complete)."""
        return self._replay(changes, anchor_index, lossless=True)

    def _replay(
        self,
        changes: Iterable[Change] = (),
        anchor_index: Optional[int] = None,
        lossless: bool = True,
    ) -> EmulationReplayResult:
        started = _time.perf_counter()
        backend = self.engine_config.backend
        if backend == "compiled":
            # O(1) copy-on-write: the shared entries are never copied,
            # only the handful the candidate changes touch.
            config = self.base_config.fork()
        else:
            config = self.base_config.clone()
            if backend == "reference":
                for table in config.tables.values():
                    table.linear_scan = True
        config.apply_changes(changes)
        if self.fault_plan is not None:
            network_faults = FaultInjector(self.fault_plan, "network")
            logging_faults = (
                None
                if lossless
                else FaultInjector(self.fault_plan, "prov-loss")
            )
        else:
            network_faults = logging_faults = None
        network = EmulatedNetwork(config, faults=network_faults)
        injected = set()
        for switch, pkt, src, dst in self.schedule:
            injected.add(pkt)
            network.inject(switch, pkt, src, dst)
        reconstructor = ExternalSpecReconstructor(config, faults=logging_faults)
        recorder = reconstructor.reconstruct(network.traces, injected)
        self.replay_seconds += _time.perf_counter() - started
        self.replay_count += 1
        return EmulationReplayResult(recorder, config)

    def __repr__(self):
        return (
            f"EmulatedNetworkExecution({self.name!r}, "
            f"{self.base_config.total_entries()} entries, "
            f"{len(self.schedule)} packets)"
        )
