"""A NetCore/Pyretic-like policy front-end.

The paper's front-end accepts controller programs written in NetCore
(part of Pyretic) and converts them internally to NDlog rules and
tuples.  This module provides the same bridge for an imperative policy
style: operators write first-match policies with combinators::

    policy = (match(src="4.3.2.0/23") >> fwd(2)) + (match() >> fwd(3))
    entries = compile_policy(policy, switch="s2")

and the compiler emits the prioritized ``flowEntry`` tuples of the
declarative model (:mod:`repro.sdn.model`) — earlier clauses get higher
priorities, mirroring NetCore's first-match semantics.
"""

from __future__ import annotations

from typing import List, Sequence

from ..addresses import Prefix
from ..datalog.tuples import Tuple
from ..errors import ReproError
from . import model

__all__ = [
    "match",
    "fwd",
    "group",
    "drop",
    "Predicate",
    "Action",
    "Clause",
    "Policy",
    "compile_policy",
]

_ANY = Prefix("0.0.0.0/0")


class Predicate:
    """A header match: source and/or destination prefix."""

    __slots__ = ("src", "dst")

    def __init__(self, src=None, dst=None):
        self.src = Prefix(src) if src is not None else _ANY
        self.dst = Prefix(dst) if dst is not None else _ANY

    def __and__(self, other: "Predicate") -> "Predicate":
        """Conjunction: the intersection of the two matches."""
        return Predicate(
            src=_intersect(self.src, other.src),
            dst=_intersect(self.dst, other.dst),
        )

    def __rshift__(self, action: "Action") -> "Clause":
        return Clause(self, action)

    def __repr__(self):
        return f"match(src={self.src}, dst={self.dst})"


def _intersect(a: Prefix, b: Prefix) -> Prefix:
    if a.contains(b.network) and a.length <= b.length:
        return b
    if b.contains(a.network) and b.length <= a.length:
        return a
    raise ReproError(f"predicates {a} and {b} do not overlap")


class Action:
    """What to do with a matching packet."""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: int):
        if kind not in ("fwd", "group", "drop"):
            raise ReproError(f"unknown action kind {kind!r}")
        self.kind = kind
        self.value = value

    def encode(self) -> int:
        """The action field of a flowEntry tuple."""
        if self.kind == "fwd":
            return self.value
        if self.kind == "group":
            return self.value  # already negative
        return model.DROP_ACTION

    def __repr__(self):
        if self.kind == "drop":
            return "drop()"
        return f"{self.kind}({self.value})"


class Clause:
    """One policy clause: predicate >> action."""

    __slots__ = ("predicate", "action")

    def __init__(self, predicate: Predicate, action: Action):
        self.predicate = predicate
        self.action = action

    def __add__(self, other) -> "Policy":
        return Policy([self]) + other

    def __repr__(self):
        return f"({self.predicate} >> {self.action})"


class Policy:
    """An ordered, first-match list of clauses (NetCore semantics)."""

    __slots__ = ("clauses",)

    def __init__(self, clauses: Sequence[Clause]):
        self.clauses = list(clauses)

    def __add__(self, other) -> "Policy":
        if isinstance(other, Clause):
            return Policy(self.clauses + [other])
        if isinstance(other, Policy):
            return Policy(self.clauses + other.clauses)
        return NotImplemented

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self):
        return " + ".join(repr(clause) for clause in self.clauses)


def match(src=None, dst=None) -> Predicate:
    """Match packets by source/destination prefix (default: any)."""
    return Predicate(src=src, dst=dst)


def fwd(port: int) -> Action:
    """Forward out a physical port."""
    if port < 0:
        raise ReproError("ports are non-negative; use group() for groups")
    return Action("fwd", port)


def group(group_id: int) -> Action:
    """Send to a (negative-numbered) group: multicast/mirroring."""
    if group_id >= 0:
        raise ReproError("group ids are negative by convention")
    return Action("group", group_id)


def drop() -> Action:
    """Discard matching packets."""
    return Action("drop", model.DROP_ACTION)


def compile_policy(
    policy, switch: str, base_priority: int = 1
) -> List[Tuple]:
    """Compile a first-match policy to prioritized flowEntry tuples.

    The first clause gets the highest priority, so the argmax selection
    of the declarative model reproduces NetCore's first-match order.
    """
    if isinstance(policy, Clause):
        policy = Policy([policy])
    if not isinstance(policy, Policy):
        raise ReproError(f"cannot compile {policy!r}")
    entries: List[Tuple] = []
    count = len(policy.clauses)
    for index, clause in enumerate(policy.clauses):
        priority = base_priority + (count - 1 - index)
        entries.append(
            model.flow_entry(
                switch,
                priority,
                clause.predicate.src,
                clause.predicate.dst,
                clause.action.encode(),
            )
        )
    return entries
