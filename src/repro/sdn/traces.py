"""Synthetic packet traces (the CAIDA OC-192 stand-in).

The paper replays a CAIDA capture and several synthetic traces with
different rates and packet sizes; the trace only serves as replay load,
so what matters is its statistical shape: many flows, a configurable
rate and packet size, and a deterministic seed so every experiment is
reproducible.  Flow popularity follows a Zipf-like distribution, as in
real backbone captures.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple as PyTuple

from ..addresses import IPv4Address, Prefix

__all__ = ["TraceConfig", "TracePacket", "synthetic_trace", "packets_for_rate"]


class TracePacket:
    """One synthetic packet: addresses plus a wire size in bytes."""

    __slots__ = ("src", "dst", "size")

    def __init__(self, src: IPv4Address, dst: IPv4Address, size: int):
        self.src = src
        self.dst = dst
        self.size = size

    def __repr__(self):
        return f"TracePacket({self.src} -> {self.dst}, {self.size}B)"


class TraceConfig:
    """Parameters of a synthetic trace."""

    def __init__(
        self,
        count: int = 1000,
        packet_size: int = 500,
        src_prefixes: Sequence = ("4.3.2.0/23", "10.0.0.0/8"),
        dst_prefixes: Sequence = ("172.16.0.0/16",),
        flows: int = 64,
        zipf_s: float = 1.2,
        seed: int = 42,
    ):
        self.count = count
        self.packet_size = packet_size
        self.src_prefixes = [Prefix(p) for p in src_prefixes]
        self.dst_prefixes = [Prefix(p) for p in dst_prefixes]
        self.flows = flows
        self.zipf_s = zipf_s
        self.seed = seed


def packets_for_rate(rate_mbps: float, packet_size: int, duration_s: float) -> int:
    """How many packets a link carries at a rate for a duration."""
    bits = rate_mbps * 1_000_000 * duration_s
    return max(1, int(bits / (packet_size * 8)))


def synthetic_trace(config: TraceConfig) -> List[TracePacket]:
    """Generate a deterministic trace with Zipf-distributed flows."""
    rng = random.Random(config.seed)
    flows = _make_flows(config, rng)
    weights = [1.0 / ((rank + 1) ** config.zipf_s) for rank in range(len(flows))]
    total = sum(weights)
    weights = [w / total for w in weights]
    packets: List[TracePacket] = []
    for _ in range(config.count):
        src, dst = rng.choices(flows, weights=weights, k=1)[0]
        packets.append(TracePacket(src, dst, config.packet_size))
    return packets


def _make_flows(config: TraceConfig, rng: random.Random) -> List[PyTuple]:
    flows = []
    for _ in range(config.flows):
        src_pfx = rng.choice(config.src_prefixes)
        dst_pfx = rng.choice(config.dst_prefixes)
        src = src_pfx.host(rng.randrange(1 << (32 - src_pfx.length)))
        dst = dst_pfx.host(rng.randrange(1 << (32 - dst_pfx.length)))
        flows.append((src, dst))
    return flows
