"""SDN substrate: the declarative OpenFlow model, topologies,
controllers, trace generators, a NetCore-like policy front-end, and the
black-box switch emulator used by the complex-network scenario.
"""

from .model import (
    SDN_PROGRAM_TEXT,
    sdn_program,
    packet,
    flow_entry,
    link,
    host_at,
    group_entry,
    delivered,
)
from .topology import Topology
from .controller import Controller, PolicyRule
from .traces import TraceConfig, synthetic_trace

__all__ = [
    "SDN_PROGRAM_TEXT",
    "sdn_program",
    "packet",
    "flow_entry",
    "link",
    "host_at",
    "group_entry",
    "delivered",
    "Topology",
    "Controller",
    "PolicyRule",
    "TraceConfig",
    "synthetic_trace",
]
