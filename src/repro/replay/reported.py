"""Execution adapter for instrumented (reported-provenance) systems.

Systems that are not written in NDlog — like the instrumented MapReduce
runtime — cannot be replayed by the datalog engine.  Instead they
provide a *runner*: a deterministic function that re-executes the
primary system with a set of base-tuple changes applied and reports the
resulting provenance.  :class:`ReportedExecution` wraps such a runner
behind the same interface as :class:`repro.replay.execution.Execution`,
so DiffProv treats both identically.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Iterable, List, Optional

from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..provenance.graph import ProvenanceGraph
from ..provenance.recorder import ProvenanceRecorder
from .log import EventLog
from .replayer import Change

__all__ = ["ReportedExecution", "ReportedReplayResult", "GraphStoreView"]


class _GraphRecord:
    """Mimics :class:`repro.datalog.state.TupleRecord` for graph data."""

    __slots__ = ("tuple", "is_base", "mutable")

    def __init__(self, tup: Tuple, is_base: bool, mutable: bool):
        self.tuple = tup
        self.is_base = is_base
        self.mutable = mutable


class GraphStoreView:
    """Live-tuple lookups backed by a provenance graph.

    Provides the subset of the engine/store interface that DiffProv's
    competitor and blocker searches use.
    """

    def __init__(self, graph: ProvenanceGraph):
        self.graph = graph
        self._by_table = {}
        for tup in graph.live_tuples():
            self._by_table.setdefault(tup.table, []).append(tup)
        for tuples in self._by_table.values():
            tuples.sort(key=lambda t: tuple((type(a).__name__, str(a)) for a in t.args))

    # store interface -------------------------------------------------------

    @property
    def store(self) -> "GraphStoreView":
        return self

    def tuples(self, table: str) -> List[Tuple]:
        return list(self._by_table.get(table, ()))

    def tuples_matching(self, table: str, position: int, value) -> List[Tuple]:
        """Equality projection, same contract as ``Store.tuples_matching``.

        Reported graphs are small (proportional to the traffic, not the
        configuration), so a filtered scan of the sorted table listing
        is exact and cheap.
        """
        return [
            tup
            for tup in self._by_table.get(table, ())
            if position < tup.arity and tup.args[position] == value
        ]

    def record(self, tup: Tuple) -> Optional[_GraphRecord]:
        inserts = self.graph.inserts_of(tup)
        if not self.graph.exists_of(tup):
            return None
        is_base = bool(inserts)
        mutable = inserts[-1].mutable if inserts else True
        return _GraphRecord(tup, is_base, bool(mutable))

    # engine interface -----------------------------------------------------

    def is_mutable(self, tup: Tuple) -> bool:
        record = self.record(tup)
        if record is None or record.mutable is None:
            return True
        return record.mutable


class ReportedReplayResult:
    """Replay result over reported provenance (graph + store view)."""

    def __init__(self, recorder: ProvenanceRecorder):
        self.recorder = recorder
        self.engine = GraphStoreView(recorder.graph)

    @property
    def graph(self) -> ProvenanceGraph:
        return self.recorder.graph

    def alive(self, tup: Tuple) -> bool:
        return self.graph.latest_open_exist(tup) is not None


class ReportedExecution:
    """An instrumented system run, replayable through its runner.

    ``runner(changes)`` must deterministically re-execute the primary
    system with the base-tuple changes applied and return the
    :class:`ProvenanceRecorder` holding the reported provenance.
    """

    def __init__(
        self,
        name: str,
        runner: Callable[[List[Change]], ProvenanceRecorder],
        log: EventLog,
        program=None,
    ):
        self.name = name
        self.runner = runner
        self.log = log
        self.program = program
        self._materialized: Optional[ReportedReplayResult] = None
        self.replay_count = 0
        self.replay_seconds = 0.0

    @property
    def graph(self) -> ProvenanceGraph:
        return self.materialize().graph

    def materialize(self) -> ReportedReplayResult:
        if self._materialized is None:
            self._materialized = self.replay()
        return self._materialized

    def replay(
        self,
        changes: Iterable[Change] = (),
        anchor_index: Optional[int] = None,
    ) -> ReportedReplayResult:
        started = _time.perf_counter()
        recorder = self.runner(list(changes))
        if not isinstance(recorder, ProvenanceRecorder):
            raise ReproError(
                f"runner of {self.name!r} must return a ProvenanceRecorder"
            )
        self.replay_seconds += _time.perf_counter() - started
        self.replay_count += 1
        return ReportedReplayResult(recorder)

    def __repr__(self):
        return f"ReportedExecution({self.name!r}, {len(self.log)} logged events)"
