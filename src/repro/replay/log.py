"""The base-event log.

Only *base* events are logged — incoming packets, configuration
changes, job inputs.  Everything else is derived deterministically and
can be reconstructed by replay, which is why the paper's logs stay
small (Section 6.5: 26 kB of log for a 12.8 GB MapReduce input).

Each entry carries a byte size so the logging-rate experiments
(Figures 5 and 6) can account storage the way the paper's prototype
does: packets contribute a fixed-size record (header + timestamp), not
their payload.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional

from ..datalog.parser import parse_tuple
from ..datalog.tuples import Tuple
from ..errors import IntegrityError, ReproError
from ..resilience.integrity import digest_text

__all__ = ["LogEntry", "EventLog", "estimate_size", "PACKET_RECORD_BYTES"]

# A logged packet record: 14 B Ethernet + 20 B IP + 8 B transport ports
# + 8 B timestamp + 4 B switch/port id = 54 bytes, fixed regardless of
# payload size ("we only store fixed-size information for each packet,
# i.e., the header and the timestamp", Section 6.5).
PACKET_RECORD_BYTES = 54

_OPS = ("insert", "delete", "barrier")


class LogEntry:
    """One logged base event."""

    __slots__ = ("op", "tuple", "mutable", "size")

    def __init__(
        self,
        op: str,
        tup: Optional[Tuple],
        mutable: Optional[bool] = None,
        size: Optional[int] = None,
    ):
        if op not in _OPS:
            raise ReproError(f"unknown log op {op!r}")
        self.op = op
        self.tuple = tup
        self.mutable = mutable
        self.size = size if size is not None else estimate_size(tup)

    def __repr__(self):
        return f"LogEntry({self.op}, {self.tuple}, size={self.size})"


def estimate_size(tup: Optional[Tuple]) -> int:
    """Bytes needed to log a tuple (metadata-style accounting)."""
    if tup is None:
        return 1
    return len(tup.table) + sum(len(str(arg)) + 1 for arg in tup.args) + 9


class EventLog:
    """An append-only log of base events plus aggregate barriers."""

    def __init__(self):
        self.entries: List[LogEntry] = []
        self.total_bytes = 0
        self._fingerprint: Optional[str] = None
        self._first_occurrence: Optional[Dict[Tuple, int]] = None

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    def append(
        self,
        op: str,
        tup: Optional[Tuple] = None,
        mutable: Optional[bool] = None,
        size: Optional[int] = None,
    ) -> LogEntry:
        entry = LogEntry(op, tup, mutable, size)
        self.entries.append(entry)
        self.total_bytes += entry.size
        self._fingerprint = None
        self._first_occurrence = None
        return entry

    def index_of_insert(self, tup: Tuple) -> Optional[int]:
        """Index of the first insertion of ``tup`` (None if absent)."""
        for index, entry in enumerate(self.entries):
            if entry.op == "insert" and entry.tuple == tup:
                return index
        return None

    def fingerprint(self) -> str:
        """Content hash of the log (entry ops, tuples, mutability flags).

        Used as part of replay-cache keys, so two logs with the same
        events share snapshots regardless of object identity.  Cached
        and invalidated on append.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for entry in self.entries:
                digest.update(
                    f"{entry.op}|{entry.tuple}|{entry.mutable}\n".encode("utf-8")
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def first_occurrence(self, tup: Tuple) -> Optional[int]:
        """Index of the first entry mentioning ``tup`` in any op.

        Unlike :meth:`index_of_insert` this also covers deletions,
        which matters for replay-cache forking: a removed tuple taints
        the replayed stream from its first mention onward.
        """
        if self._first_occurrence is None:
            table: Dict[Tuple, int] = {}
            for index, entry in enumerate(self.entries):
                if entry.tuple is not None and entry.tuple not in table:
                    table[entry.tuple] = index
            self._first_occurrence = table
        return self._first_occurrence.get(tup)

    def inserts_of_table(self, table: str) -> List[int]:
        return [
            i
            for i, entry in enumerate(self.entries)
            if entry.op == "insert" and entry.tuple is not None
            and entry.tuple.table == table
        ]

    # -- persistence --------------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the log as text, one entry per line.

        The body is followed by a ``# sha256:`` trailer so :meth:`load`
        can detect truncation or corruption of a dumped log before
        replaying it (docs/resilience.md).
        """
        lines = []
        for entry in self.entries:
            if entry.op == "barrier":
                lines.append("barrier")
            else:
                flag = "" if entry.mutable is None else (
                    " mutable" if entry.mutable else " immutable"
                )
                lines.append(f"{entry.op} {entry.tuple}{flag}")
        body = "".join(line + "\n" for line in lines)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(body)
            handle.write(f"# sha256:{digest_text(body)}\n")

    @classmethod
    def load(cls, path: str) -> "EventLog":
        with open(path, "r", encoding="utf-8") as handle:
            raw_lines = handle.readlines()
        # Verify the dump trailer when present; logs written by older
        # versions (or by hand) have no trailer and load unchecked.
        body_lines = []
        expected = None
        for raw in raw_lines:
            stripped = raw.strip()
            if stripped.startswith("# sha256:"):
                expected = stripped[len("# sha256:"):]
            elif stripped.startswith("#"):
                continue
            else:
                body_lines.append(raw)
        if expected is not None:
            actual = digest_text("".join(body_lines))
            if actual != expected:
                raise IntegrityError(
                    f"event log {path} failed its integrity check "
                    f"(sha256 {actual[:12]}… != recorded {expected[:12]}…); "
                    f"the dump is truncated or corrupt"
                )
        log = cls()
        for line in body_lines:
            line = line.strip()
            if not line:
                continue
            if line == "barrier":
                log.append("barrier")
                continue
            op, _, rest = line.partition(" ")
            mutable = None
            if rest.endswith(" mutable"):
                mutable = True
                rest = rest[: -len(" mutable")]
            elif rest.endswith(" immutable"):
                mutable = False
                rest = rest[: -len(" immutable")]
            log.append(op, parse_tuple(rest), mutable)
        return log
