"""Periodic checkpoints for time-travel state reconstruction.

DiffProv must consider system state "as of" arbitrary past instants
(Section 4.8).  Replaying the whole log works but is linear in its
length; checkpoints bound the work to the tail since the most recent
snapshot, like DTaP.  A checkpoint stores the *base* tuples alive at a
log index — derived state is recomputed, which keeps snapshots small
and provenance consistent.
"""

from __future__ import annotations

from typing import List

from ..datalog.engine import Engine
from ..datalog.rules import Program
from ..errors import ReproError
from .log import EventLog

__all__ = ["Checkpoint", "Checkpointer"]


class Checkpoint:
    """Base-tuple snapshot at a log index."""

    __slots__ = ("index", "base_tuples")

    def __init__(self, index: int, base_tuples: List[PyTuple]):
        self.index = index
        self.base_tuples = list(base_tuples)

    def __repr__(self):
        return f"Checkpoint(index={self.index}, {len(self.base_tuples)} tuples)"


class Checkpointer:
    """Builds checkpoints over a log and reconstructs state from them."""

    def __init__(self, program: Program, every: int = 64):
        if every <= 0:
            raise ReproError("checkpoint interval must be positive")
        self.program = program
        self.every = every
        self.checkpoints: List[Checkpoint] = []

    def build(self, log: EventLog) -> List[Checkpoint]:
        """Scan the log once, snapshotting every ``every`` entries."""
        self.checkpoints = [Checkpoint(0, [])]
        alive: dict = {}
        for index, entry in enumerate(log.entries):
            if entry.op == "insert" and entry.tuple is not None:
                schema = self.program.schemas.get(entry.tuple.table)
                if schema is not None and schema.kind.value == "state":
                    alive[entry.tuple] = (
                        entry.mutable if entry.mutable is not None
                        else schema.mutable
                    )
            elif entry.op == "delete" and entry.tuple is not None:
                alive.pop(entry.tuple, None)
            if (index + 1) % self.every == 0:
                self.checkpoints.append(
                    Checkpoint(index + 1, [(t, m) for t, m in alive.items()])
                )
        return self.checkpoints

    def nearest_before(self, index: int) -> Checkpoint:
        best = self.checkpoints[0]
        for checkpoint in self.checkpoints:
            if checkpoint.index <= index and checkpoint.index >= best.index:
                best = checkpoint
        return best

    def state_at(self, log: EventLog, index: int) -> Engine:
        """Engine holding the system state just before log entry ``index``.

        Starts from the nearest checkpoint and replays only the tail —
        the work is O(every) instead of O(index).
        """
        if not self.checkpoints:
            self.build(log)
        checkpoint = self.nearest_before(index)
        engine = Engine(self.program)
        for tup, mutable in checkpoint.base_tuples:
            engine.insert(tup, mutable)
        engine.run()
        for entry in log.entries[checkpoint.index:index]:
            if entry.op == "insert":
                engine.insert_and_run(entry.tuple, entry.mutable)
            elif entry.op == "delete":
                engine.delete(entry.tuple)
                engine.run()
            elif entry.op == "barrier":
                engine.fire_aggregates()
        return engine
