"""Deterministic replay, with optional base-tuple changes.

Replaying the log against a fresh engine reconstructs every derivation
— and, with a recorder attached, the full provenance graph.  DiffProv's
UPDATETREE step (Section 4.6) is a replay over a *clone*: the original
log plus the accumulated changes, applied "shortly before they are
needed" (just before the anchor event, Section 4.8).  The running
system is never touched.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..datalog.engine import Engine
from ..datalog.rules import Program
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..faults import FaultInjector
from ..observability import active as _active_telemetry
from ..provenance.graph import ProvenanceGraph
from ..provenance.recorder import ProvenanceRecorder
from .log import EventLog

__all__ = ["Change", "ReplayResult", "replay"]


class Change:
    """One base-tuple change in Δ(B→G).

    A change can insert a tuple, remove tuples, or both (a
    "modification", e.g. fixing the value of a configuration entry).
    ``reason`` is a human-readable explanation used in diagnosis
    reports.
    """

    __slots__ = ("insert", "remove", "reason")

    def __init__(
        self,
        insert: Optional[Tuple] = None,
        remove: Sequence[Tuple] = (),
        reason: str = "",
    ):
        if insert is None and not remove:
            raise ReproError("a Change must insert or remove something")
        self.insert = insert
        self.remove = tuple(remove)
        self.reason = reason

    @property
    def is_modification(self) -> bool:
        return self.insert is not None and bool(self.remove)

    def describe(self) -> str:
        if self.is_modification:
            removed = ", ".join(str(t) for t in self.remove)
            return f"change {removed} -> {self.insert}"
        if self.insert is not None:
            return f"insert {self.insert}"
        removed = ", ".join(str(t) for t in self.remove)
        return f"remove {removed}"

    def __eq__(self, other):
        if isinstance(other, Change):
            return (self.insert, self.remove) == (other.insert, other.remove)
        return NotImplemented

    def __hash__(self):
        return hash((self.insert, self.remove))

    def __repr__(self):
        return f"Change({self.describe()})"


class ReplayResult:
    """A replayed execution: engine state plus reconstructed provenance."""

    def __init__(self, engine: Engine, recorder: ProvenanceRecorder):
        self.engine = engine
        self.recorder = recorder

    @property
    def graph(self) -> ProvenanceGraph:
        return self.recorder.graph

    def alive(self, tup: Tuple) -> bool:
        return self.engine.exists(tup)


def replay(
    program: Program,
    log: EventLog,
    changes: Iterable[Change] = (),
    anchor_index: Optional[int] = None,
    record: bool = True,
    faults=None,
    lossless: bool = False,
    step_limit: Optional[int] = None,
    telemetry=None,
) -> ReplayResult:
    """Replay a log, applying ``changes`` just before ``anchor_index``.

    - Removed tuples have their log insertions suppressed entirely.
    - Inserted tuples are injected immediately before the anchor entry
      (or at the start of the log when no anchor is given), which
      realizes the paper's "apply the updates shortly before they are
      needed for the first time".
    - Each log entry is processed to a fixpoint before the next one, so
      the replay interleaves exactly like the original execution.
    - ``faults`` (a FaultPlan) rebuilds fresh injectors with fixed
      purposes per replay, so every replay of the same log reproduces
      the primary run's fault schedule.  With ``lossless=True`` the
      engine-level message faults are still reproduced (they shaped
      what actually happened) but the recorder is not subjected to the
      plan's logging loss — this is the debugger-side reconstruction
      from the lossless event log (Section 5's query-time mode).
    """
    changes = list(changes)
    removed = set()
    for change in changes:
        removed.update(change.remove)
    inserted = [c.insert for c in changes if c.insert is not None]

    telemetry = _active_telemetry(telemetry)
    if faults is not None:
        engine_faults = FaultInjector(faults, "engine")
        logging_faults = (
            None if lossless else FaultInjector(faults, "prov-loss")
        )
    else:
        engine_faults = logging_faults = None
    recorder = (
        ProvenanceRecorder(faults=logging_faults, telemetry=telemetry)
        if record
        else None
    )
    engine = Engine(
        program,
        recorder=recorder,
        faults=engine_faults,
        step_limit=step_limit,
        telemetry=telemetry,
    )
    anchor = anchor_index if anchor_index is not None else 0

    def apply_insertions():
        for tup in inserted:
            engine.insert_and_run(tup, mutable=True)

    def drive():
        applied = False
        for index, entry in enumerate(log.entries):
            if index == anchor and not applied:
                apply_insertions()
                applied = True
            if entry.op == "insert":
                if entry.tuple in removed:
                    continue
                engine.insert_and_run(entry.tuple, mutable=entry.mutable)
            elif entry.op == "delete":
                if entry.tuple in removed:
                    continue
                engine.delete(entry.tuple)
                engine.run()
            elif entry.op == "barrier":
                engine.fire_aggregates()
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown log op {entry.op!r}")
        if not applied:
            apply_insertions()

    if telemetry is None:
        drive()
    else:
        with telemetry.span(
            "engine.run", entries=len(log.entries), changes=len(changes)
        ) as span:
            drive()
            span.set("steps", engine.steps)
        telemetry.observe("engine.replay_steps", engine.steps)
        if engine_faults is not None:
            engine_faults.fold_into(telemetry)
        if logging_faults is not None:
            logging_faults.fold_into(telemetry)
    return ReplayResult(engine, recorder if recorder is not None else ProvenanceRecorder())
