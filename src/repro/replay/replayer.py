"""Deterministic replay, with optional base-tuple changes.

Replaying the log against a fresh engine reconstructs every derivation
— and, with a recorder attached, the full provenance graph.  DiffProv's
UPDATETREE step (Section 4.6) is a replay over a *clone*: the original
log plus the accumulated changes, applied "shortly before they are
needed" (just before the anchor event, Section 4.8).  The running
system is never touched.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..datalog.config import EngineConfig
from ..datalog.engine import Engine
from ..datalog.rules import Program
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..faults import FaultInjector
from ..observability import active as _active_telemetry
from ..provenance.graph import ProvenanceGraph
from ..provenance.recorder import ProvenanceRecorder
from .log import EventLog

__all__ = ["Change", "ReplayResult", "replay"]


class Change:
    """One base-tuple change in Δ(B→G).

    A change can insert a tuple, remove tuples, or both (a
    "modification", e.g. fixing the value of a configuration entry).
    ``reason`` is a human-readable explanation used in diagnosis
    reports.
    """

    __slots__ = ("insert", "remove", "reason")

    def __init__(
        self,
        insert: Optional[Tuple] = None,
        remove: Sequence[Tuple] = (),
        reason: str = "",
    ):
        if insert is None and not remove:
            raise ReproError("a Change must insert or remove something")
        self.insert = insert
        self.remove = tuple(remove)
        self.reason = reason

    @property
    def is_modification(self) -> bool:
        return self.insert is not None and bool(self.remove)

    def describe(self) -> str:
        if self.is_modification:
            removed = ", ".join(str(t) for t in self.remove)
            return f"change {removed} -> {self.insert}"
        if self.insert is not None:
            return f"insert {self.insert}"
        removed = ", ".join(str(t) for t in self.remove)
        return f"remove {removed}"

    def __eq__(self, other):
        if isinstance(other, Change):
            return (self.insert, self.remove) == (other.insert, other.remove)
        return NotImplemented

    def __hash__(self):
        return hash((self.insert, self.remove))

    def __repr__(self):
        return f"Change({self.describe()})"


class ReplayResult:
    """A replayed execution: engine state plus reconstructed provenance."""

    def __init__(self, engine: Engine, recorder: ProvenanceRecorder):
        self.engine = engine
        self.recorder = recorder

    @property
    def graph(self) -> ProvenanceGraph:
        return self.recorder.graph

    def alive(self, tup: Tuple) -> bool:
        return self.engine.exists(tup)


def replay(
    program: Program,
    log: EventLog,
    changes: Iterable[Change] = (),
    anchor_index: Optional[int] = None,
    record: bool = True,
    faults=None,
    lossless: bool = False,
    step_limit: Optional[int] = None,
    telemetry=None,
    cache=None,
    deadline=None,
    use_indexes: Optional[bool] = None,
    lazy: Optional[bool] = None,
    engine: Optional[EngineConfig] = None,
) -> ReplayResult:
    """Replay a log, applying ``changes`` just before ``anchor_index``.

    - Removed tuples have their log insertions suppressed entirely.
    - Inserted tuples are injected immediately before the anchor entry
      (or at the start of the log when no anchor is given), which
      realizes the paper's "apply the updates shortly before they are
      needed for the first time".
    - Each log entry is processed to a fixpoint before the next one, so
      the replay interleaves exactly like the original execution.
    - ``faults`` (a FaultPlan) rebuilds fresh injectors with fixed
      purposes per replay, so every replay of the same log reproduces
      the primary run's fault schedule.  With ``lossless=True`` the
      engine-level message faults are still reproduced (they shaped
      what actually happened) but the recorder is not subjected to the
      plan's logging loss — this is the debugger-side reconstruction
      from the lossless event log (Section 5's query-time mode).
    - ``cache`` (a :class:`repro.replay.cache.ReplayCache`) lets the
      replay restore a snapshotted result, or fork from the longest
      snapshotted log prefix consistent with the change set, instead of
      re-deriving from scratch.  The cache never changes the outcome —
      snapshots are the pickled state of the identical computation.
    - ``engine`` (an :class:`repro.datalog.config.EngineConfig`, a
      backend name string, or a mapping) selects the evaluation backend
      and provenance mode; the default is the compiled/annotated fast
      path.  Every mode produces byte-identical results (the
      equivalence tests rely on this) — only the cost changes.  The
      old ``use_indexes``/``lazy`` booleans are deprecated shims.
    """
    config = EngineConfig.resolve(engine, use_indexes=use_indexes, lazy=lazy)
    changes = list(changes)
    removed = set()
    for change in changes:
        removed.update(change.remove)
    inserted = [c.insert for c in changes if c.insert is not None]

    telemetry = _active_telemetry(telemetry)
    entries = log.entries
    anchor = anchor_index if anchor_index is not None else 0

    base_key = result_key = None
    if cache is not None:
        base_key = cache.base_key(log, faults, lossless, record, config)
        result_key = cache.result_key(base_key, changes, anchor_index,
                                      len(entries))
        restored = cache.fetch(result_key, telemetry, step_limit)
        if restored is not None:
            engine, recorder = restored
            engine.deadline = deadline
            return ReplayResult(
                engine, recorder if recorder is not None else ProvenanceRecorder()
            )

    # The changed replay is indistinguishable from the pristine one up
    # to the fork point: before the anchor (no insertions yet) and
    # before the first mention of any removed tuple (no suppression
    # yet).  Up to there, state can come from a prefix snapshot.
    fork = min(anchor, len(entries)) if inserted else len(entries)
    for tup in removed:
        occurrence = log.first_occurrence(tup)
        if occurrence is not None:
            fork = min(fork, occurrence)

    start = 0
    engine = recorder = None
    if cache is not None and fork > 0:
        prefix = cache.best_prefix(base_key, fork)
        if prefix > 0:
            got = cache.fetch(
                cache.prefix_key(base_key, prefix), telemetry, step_limit
            )
            if got is not None:
                engine, recorder = got
                start = prefix

    if engine is None:
        if faults is not None:
            engine_faults = FaultInjector(faults, "engine")
            logging_faults = (
                None if lossless else FaultInjector(faults, "prov-loss")
            )
        else:
            engine_faults = logging_faults = None
        recorder = (
            ProvenanceRecorder(
                faults=logging_faults, telemetry=telemetry,
                provenance=config.provenance,
            )
            if record
            else None
        )
        engine = Engine(
            program,
            recorder=recorder,
            faults=engine_faults,
            step_limit=step_limit,
            telemetry=telemetry,
            config=config,
        )
    engine.deadline = deadline

    capture_at = fork if (cache is not None and fork > start) else -1

    def apply_insertions():
        for tup in inserted:
            engine.insert_and_run(tup, mutable=True)

    def drive():
        applied = False
        for index in range(start, len(entries)):
            entry = entries[index]
            if index == capture_at:
                cache.store(
                    cache.prefix_key(base_key, index), engine, recorder,
                    telemetry,
                )
            if index == anchor and not applied:
                apply_insertions()
                applied = True
            if entry.op == "insert":
                if entry.tuple in removed:
                    continue
                engine.insert_and_run(entry.tuple, mutable=entry.mutable)
            elif entry.op == "delete":
                if entry.tuple in removed:
                    continue
                engine.delete(entry.tuple)
                engine.run()
            elif entry.op == "barrier":
                engine.fire_aggregates()
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown log op {entry.op!r}")
        if capture_at == len(entries):
            cache.store(
                cache.prefix_key(base_key, capture_at), engine, recorder,
                telemetry,
            )
        if not applied:
            apply_insertions()

    if telemetry is None:
        drive()
    else:
        with telemetry.span(
            "engine.run", entries=len(entries) - start, changes=len(changes)
        ) as span:
            drive()
            span.set("steps", engine.steps)
        telemetry.observe("engine.replay_steps", engine.steps)
        if engine.faults is not None:
            engine.faults.fold_into(telemetry)
        if recorder is not None and recorder.faults is not None:
            recorder.faults.fold_into(telemetry)
    if cache is not None and changes and cache.store_results:
        cache.store(result_key, engine, recorder, telemetry)
    return ReplayResult(engine, recorder if recorder is not None else ProvenanceRecorder())
