"""Logging and replay engines (Section 5).

The logging engine records base events; the replay engine reconstructs
derivations — and therefore provenance — deterministically at query
time.  This is the paper's preferred "query-time" mode: runtime
overhead stays low, and diagnostic queries (which are rare) pay for the
replay.  The "runtime" mode, which materializes provenance as the
system executes, is also supported for the ablation benchmarks.
"""

from .log import EventLog, LogEntry, estimate_size
from .replayer import ReplayResult, replay, Change
from .cache import ReplayCache
from .execution import Execution
from .checkpoints import Checkpointer
from .parallel import CandidateEvaluator

__all__ = [
    "EventLog",
    "LogEntry",
    "estimate_size",
    "ReplayResult",
    "replay",
    "Change",
    "ReplayCache",
    "Execution",
    "Checkpointer",
    "CandidateEvaluator",
]
