"""Baseline snapshot cache for deterministic replay.

DiffProv's inner loop replays the bad execution once per candidate
change (Section 4.6), and every one of those replays re-derives the
same log prefix from scratch — the dominant cost in the Figure 7 phase
breakdown.  Because the engine is deterministic, the state reached
after consuming a log prefix is a pure function of (program, log
prefix, fault plan); this module checkpoints that state once and lets
subsequent replays *fork* from the checkpoint instead of re-deriving
it.

Two snapshot granularities share one LRU store:

- **prefix snapshots** — engine/recorder state after consuming log
  entries ``[0, p)`` with no changes applied.  A replay that applies
  changes at anchor ``a`` can fork from any prefix ``p <= fork`` where
  ``fork = min(a, first occurrence of any removed tuple)`` — before
  that point the changed replay is indistinguishable from the pristine
  one.  A prefix snapshot at ``len(log)`` doubles as the result of a
  zero-change replay (the :meth:`repro.replay.execution.Execution.materialize`
  fast path).

- **result snapshots** — the final state of a changed replay, keyed by
  the change set and anchor.  The round loop re-replays the committed
  change set right after MAKEAPPEAR found it, and verification replays
  it again — both become restores.

Snapshots are held as pickled bytes, so every fetch yields fresh object
copies: cache consumers can mutate restored engines freely, and the
same bytes can be shipped to worker processes
(:mod:`repro.replay.parallel`).  Restoring is a pure speed-up — the
unpickled state is byte-identical to the state a fresh replay would
have reached, including mid-stream fault-injector PRNGs — so diagnoses
are unchanged whether the cache is on, off, cold, or warm.

Hit/miss/store/eviction counters are exposed via :meth:`stats` and can
be folded into a :class:`repro.observability.MetricsRegistry` with
:meth:`fold_into`; per-event counters are also bumped on whatever
telemetry the triggering replay carries.

Stored payloads carry length+digest framing
(:mod:`repro.resilience.integrity`), so a truncated or bit-flipped
snapshot — real-world memory pressure, or the ``snapshot-corrupt``
fault kind — is detected on fetch, quarantined (evicted and counted
under ``replay.cache.corrupt``), and reported as an ordinary miss: the
caller re-derives the state from scratch and the diagnosis is
unaffected.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple as PyTuple

from ..resilience.integrity import IntegrityError, frame, unframe

__all__ = ["ReplayCache", "DEFAULT_MAX_ENTRIES"]

# Snapshots are a few hundred kB each for the built-in scenarios; 64
# entries comfortably covers a multi-round diagnosis plus an autoref
# sweep without growing past a few tens of MB.
DEFAULT_MAX_ENTRIES = 64


class _Entry:
    __slots__ = ("payload", "nbytes", "kind")

    def __init__(self, payload: bytes, kind: str):
        self.payload = payload
        self.nbytes = len(payload)
        self.kind = kind


class ReplayCache:
    """LRU store of pickled ``(engine, recorder)`` replay snapshots."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 store_results: bool = True, faults=None):
        self.max_entries = max_entries
        # Result snapshots trade one pickle per candidate replay for a
        # restore whenever a change set is replayed again; disable to
        # keep only prefix snapshots.
        self.store_results = store_results
        # Optional FaultInjector whose corrupt_snapshot() decides which
        # stores get their framed payload damaged (the snapshot-corrupt
        # fault kind); None in production.
        self.faults = faults
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        # base key -> sorted list of stored prefix lengths, so a replay
        # can find the longest usable prefix without scanning the LRU.
        self._prefixes: Dict[tuple, List[int]] = {}
        self.hits = 0
        self.misses = 0
        self.prefix_hits = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        self.bytes_stored = 0

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def base_key(log, faults, lossless: bool, record: bool,
                 engine=None) -> tuple:
        """Everything that shapes a replay besides changes/anchor.

        The fault plan enters via its canonical ``describe()`` spec
        (which includes the seed), so two plans with the same schedule
        share snapshots and different seeds never do.  ``lossless``
        only matters when a plan is present (it gates the prov-loss
        injector), so it is collapsed otherwise.  ``engine`` (an
        :class:`repro.datalog.config.EngineConfig`) keys snapshots by
        backend/provenance mode: results are byte-identical across
        modes, but the pickled *state* is not (different store classes,
        annotation payloads), so snapshots never cross modes.
        """
        faults_fp = "" if faults is None else faults.describe()
        return (
            log.fingerprint(),
            len(log),
            faults_fp,
            bool(lossless) if faults is not None else False,
            bool(record),
            "" if engine is None else engine.describe(),
        )

    @staticmethod
    def _changes_key(changes) -> tuple:
        return tuple(
            (
                "" if change.insert is None else str(change.insert),
                tuple(sorted(str(t) for t in change.remove)),
            )
            for change in changes
        )

    @staticmethod
    def prefix_key(base_key: tuple, prefix: int) -> tuple:
        return (base_key, "prefix", prefix)

    @classmethod
    def result_key(
        cls, base_key: tuple, changes, anchor_index: Optional[int],
        log_length: int,
    ) -> tuple:
        """Key for the final state of a changed replay.

        A zero-change replay is exactly the full-length prefix, so its
        key collapses onto :meth:`prefix_key` — a warm materialization
        and a warm empty replay share one snapshot.
        """
        changes = list(changes)
        if not changes:
            return cls.prefix_key(base_key, log_length)
        anchor = anchor_index if anchor_index is not None else 0
        return (base_key, "result", cls._changes_key(changes),
                min(anchor, log_length))

    # -- fetch/store ---------------------------------------------------------

    def fetch(self, key: tuple, telemetry=None, step_limit=None):
        """Restore a snapshot: fresh ``(engine, recorder)`` copies.

        Returns ``None`` on a miss.  The caller's telemetry and step
        limit are reattached to the restored engine (snapshots are
        stored stripped — see ``Engine.__getstate__``).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if telemetry is not None:
                telemetry.inc("replay.cache.misses")
            return None
        self._entries.move_to_end(key)
        try:
            raw = unframe(entry.payload)
            if telemetry is not None:
                with telemetry.span("replay.cache.restore",
                                    bytes=entry.nbytes):
                    engine, recorder = pickle.loads(raw)
            else:
                engine, recorder = pickle.loads(raw)
        except (IntegrityError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, ValueError,
                TypeError):
            # A damaged snapshot must never take the diagnosis down:
            # quarantine the entry and report a miss so the caller
            # re-derives the state from scratch.
            self._quarantine(key, entry, telemetry)
            return None
        self.hits += 1
        if entry.kind == "prefix":
            self.prefix_hits += 1
        if telemetry is not None:
            telemetry.inc("replay.cache.hits")
        engine.telemetry = telemetry
        engine.step_limit = step_limit
        if recorder is not None:
            recorder.telemetry = telemetry
        return engine, recorder

    def _quarantine(self, key: tuple, entry: "_Entry", telemetry) -> None:
        """Drop a corrupt entry and count the event as a recorded miss."""
        del self._entries[key]
        self.bytes_stored -= entry.nbytes
        if entry.kind == "prefix":
            base_key, _, prefix = key
            prefixes = self._prefixes.get(base_key)
            if prefixes is not None:
                try:
                    prefixes.remove(prefix)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not prefixes:
                    del self._prefixes[base_key]
        self.corrupt += 1
        self.misses += 1
        if telemetry is not None:
            telemetry.inc("replay.cache.corrupt")
            telemetry.inc("replay.cache.misses")

    def contains(self, key: tuple) -> bool:
        return key in self._entries

    def store(self, key: tuple, engine, recorder, telemetry=None) -> None:
        """Snapshot ``(engine, recorder)`` under ``key`` (idempotent)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        payload = frame(pickle.dumps(
            (engine, recorder), protocol=pickle.HIGHEST_PROTOCOL
        ))
        if self.faults is not None and self.faults.corrupt_snapshot():
            # Simulated bit rot: keep the intact header, truncate the
            # body — exactly the shape a half-written snapshot takes.
            payload = payload[: max(1, len(payload) // 2)]
        kind = key[1]
        self._entries[key] = _Entry(payload, kind)
        self.stores += 1
        self.bytes_stored += len(payload)
        if kind == "prefix":
            base_key, _, prefix = key
            prefixes = self._prefixes.setdefault(base_key, [])
            if prefix not in prefixes:
                prefixes.append(prefix)
                prefixes.sort()
        if telemetry is not None:
            telemetry.inc("replay.cache.stores")
            telemetry.set_max("replay.cache.bytes_max", self.bytes_stored)
        while len(self._entries) > self.max_entries:
            self._evict(telemetry)

    def best_prefix(self, base_key: tuple, fork: int) -> int:
        """Longest stored prefix ``<= fork`` for this base (0 if none)."""
        best = 0
        for prefix in self._prefixes.get(base_key, ()):
            if prefix > fork:
                break
            best = prefix
        return best

    def _evict(self, telemetry=None) -> None:
        key, entry = self._entries.popitem(last=False)
        self.evictions += 1
        self.bytes_stored -= entry.nbytes
        if entry.kind == "prefix":
            base_key, _, prefix = key
            prefixes = self._prefixes.get(base_key)
            if prefixes is not None:
                try:
                    prefixes.remove(prefix)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not prefixes:
                    del self._prefixes[base_key]
        if telemetry is not None:
            telemetry.inc("replay.cache.evictions")

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._prefixes.clear()
        self.bytes_stored = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes_stored,
            "hits": self.hits,
            "prefix_hits": self.prefix_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }

    def fold_into(self, telemetry) -> None:
        """Record occupancy gauges on a telemetry's MetricsRegistry.

        Hit/miss/store/eviction counters accumulate live (each replay
        bumps the telemetry it carries); occupancy is only meaningful
        at fold time.
        """
        if telemetry is None:
            return
        telemetry.set_gauge("replay.cache.entries", len(self._entries))
        telemetry.set_gauge("replay.cache.bytes", self.bytes_stored)

    def __repr__(self):
        return (
            f"ReplayCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"bytes={self.bytes_stored})"
        )
