"""An Execution ties together a program, its log, and its provenance.

This is the object diagnostic scenarios hand to the debugger.  It can
run in two logging modes (Section 5):

- ``"query-time"`` (default, what the paper's experiments use): only
  base events are logged at runtime; provenance is reconstructed by
  deterministic replay when a query arrives.

- ``"runtime"``: a recorder is attached while the system runs, so the
  provenance graph is readily available at query time at the price of
  per-event runtime overhead.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import Iterable, Optional

from ..datalog.config import EngineConfig
from ..datalog.engine import Engine
from ..datalog.rules import Program
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..faults import FaultInjector
from ..provenance.graph import ProvenanceGraph
from ..provenance.recorder import ProvenanceRecorder
from .log import EventLog
from .replayer import Change, ReplayResult, replay

__all__ = ["Execution"]

_MODES = ("query-time", "runtime")


class Execution:
    """A logged run of an NDlog program."""

    def __init__(
        self,
        program: Program,
        name: str = "execution",
        mode: str = "query-time",
        logging_enabled: bool = True,
        faults=None,
        telemetry=None,
        replay_cache=None,
        use_indexes: Optional[bool] = None,
        lazy_provenance: Optional[bool] = None,
        engine: Optional[EngineConfig] = None,
    ):
        if mode not in _MODES:
            raise ReproError(f"unknown logging mode {mode!r}")
        self.program = program
        self.name = name
        self.mode = mode
        self.logging_enabled = logging_enabled
        # Backend/provenance selection, inherited by the live engine
        # and every replay.  All modes produce byte-identical results
        # (the equivalence tests rely on this); only the cost changes.
        # The old use_indexes/lazy_provenance booleans are deprecated
        # shims handled by EngineConfig.resolve.
        self.engine_config = EngineConfig.resolve(
            engine, use_indexes=use_indexes, lazy=lazy_provenance
        )
        # Optional FaultPlan.  The live engine and every replay build
        # injectors with the same purposes from it, so query-time
        # replays see the same fault schedule the primary run did.
        self.fault_plan = faults
        # Optional Telemetry, inherited by the live engine and every
        # replay.  The debugger attaches its own for the duration of a
        # diagnosis, so query-time replays land in the diagnosis trace.
        self.telemetry = telemetry
        # Optional ReplayCache (repro.replay.cache): replays restore or
        # fork from snapshots instead of re-deriving.  The debugger
        # attaches one for the duration of a diagnosis unless disabled.
        self.replay_cache = replay_cache
        self.log = EventLog()
        self._runtime_recorder = (
            ProvenanceRecorder(
                faults=(
                    FaultInjector(faults, "prov-loss")
                    if faults is not None
                    else None
                ),
                telemetry=telemetry,
                provenance=self.engine_config.provenance,
            )
            if mode == "runtime"
            else None
        )
        self.engine = Engine(
            program,
            recorder=self._runtime_recorder,
            faults=(
                FaultInjector(faults, "engine") if faults is not None else None
            ),
            telemetry=telemetry,
            config=self.engine_config,
        )
        self._materialized: Optional[ReplayResult] = None
        # Optional repro.resilience.Deadline the debugger attaches for
        # the duration of a diagnosis; every replay inherits it.
        self.deadline = None
        self.replay_count = 0
        self.replay_seconds = 0.0

    # -- deprecated boolean knobs ---------------------------------------------
    # Kept as properties over engine_config so code written against the
    # old API keeps working (with a warning).  Setting one only affects
    # subsequent replays — the live engine was built at __init__ time,
    # exactly as with the old plain attributes.

    @property
    def use_indexes(self) -> bool:
        warnings.warn(
            "Execution.use_indexes is deprecated; read "
            "execution.engine_config instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.engine_config.use_indexes

    @use_indexes.setter
    def use_indexes(self, value: bool) -> None:
        warnings.warn(
            "Execution.use_indexes is deprecated; assign "
            "execution.engine_config = EngineConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.engine_config = EngineConfig.from_legacy(
            use_indexes=value, lazy=self.engine_config.lazy
        )

    @property
    def lazy_provenance(self) -> bool:
        warnings.warn(
            "Execution.lazy_provenance is deprecated; read "
            "execution.engine_config instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.engine_config.lazy

    @lazy_provenance.setter
    def lazy_provenance(self, value: bool) -> None:
        warnings.warn(
            "Execution.lazy_provenance is deprecated; assign "
            "execution.engine_config = EngineConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.engine_config = EngineConfig.from_legacy(
            use_indexes=self.engine_config.use_indexes, lazy=value
        )

    # -- driving the primary system -----------------------------------------

    def insert(
        self,
        tup: Tuple,
        mutable: Optional[bool] = None,
        size: Optional[int] = None,
    ) -> None:
        """Feed a base event into the system (and the log)."""
        if self.logging_enabled:
            self.log.append("insert", tup, mutable, size)
        self.engine.insert_and_run(tup, mutable)
        self._materialized = None

    def delete(self, tup: Tuple, size: Optional[int] = None) -> None:
        if self.logging_enabled:
            self.log.append("delete", tup, size=size)
        self.engine.delete(tup)
        self.engine.run()
        self._materialized = None

    def barrier(self) -> None:
        """Fire aggregate rules (batch-job completion point)."""
        if self.logging_enabled:
            self.log.append("barrier", size=1)
        self.engine.fire_aggregates()
        self._materialized = None

    # -- provenance access ----------------------------------------------------

    @property
    def graph(self) -> ProvenanceGraph:
        """The provenance graph (replay-reconstructed if query-time)."""
        if self._runtime_recorder is not None:
            return self._runtime_recorder.graph
        return self.materialize().graph

    def materialize(self) -> ReplayResult:
        """Reconstruct the *persisted* provenance by replay (cached).

        Under a fault plan with logging loss, this is the graph the
        production recorder managed to persist: the plan's prov-loss
        stream applies, so vertexes may be missing (the recorder's
        ``lost_events`` counts them).  Diagnostic replays made through
        :meth:`replay` are lossless — see there.
        """
        if not self.logging_enabled:
            raise ReproError(
                f"execution {self.name!r} ran with logging disabled; "
                f"provenance cannot be reconstructed"
            )
        if self._materialized is None:
            self._materialized = self._replay(lossless=False)
        return self._materialized

    def replay(
        self,
        changes: Iterable[Change] = (),
        anchor_index: Optional[int] = None,
    ) -> ReplayResult:
        """Replay this execution's log on a clone (Section 4.6).

        Replays run in the debugger's controlled environment: the
        plan's engine-level message faults are reproduced (they shaped
        what the primary run derived), but recording is lossless — the
        event log is ground truth, so a complete graph can always be
        rebuilt from it.
        """
        return self._replay(changes, anchor_index, lossless=True)

    def _replay(
        self,
        changes: Iterable[Change] = (),
        anchor_index: Optional[int] = None,
        lossless: bool = True,
    ) -> ReplayResult:
        started = _time.perf_counter()
        # Bound every replay by a generous multiple of the primary run:
        # a candidate change that sends the replayed system into a loop
        # (e.g. a forwarding cycle) raises StepLimitExceeded instead of
        # hanging the diagnosis.
        step_limit = (
            self.engine.steps * 10 + 10_000 if self.engine.steps else None
        )
        result = replay(
            self.program,
            self.log,
            changes=changes,
            anchor_index=anchor_index,
            faults=self.fault_plan,
            lossless=lossless,
            step_limit=step_limit,
            telemetry=self.telemetry,
            cache=self.replay_cache,
            deadline=self.deadline,
            engine=self.engine_config,
        )
        self.replay_seconds += _time.perf_counter() - started
        self.replay_count += 1
        return result

    def __getstate__(self):
        # Shipped to replay-evaluator worker processes: strip telemetry
        # (wall clocks, open spans) and the replay cache (each process
        # keeps its own); strip the materialized result too — workers
        # re-derive what they need, usually from their own snapshots.
        state = self.__dict__.copy()
        state["telemetry"] = None
        state["replay_cache"] = None
        state["_materialized"] = None
        # Deadlines are parent-local (live clock callable); workers are
        # bounded by the evaluator's pool timeouts instead.
        state["deadline"] = None
        return state

    def __repr__(self):
        return (
            f"Execution({self.name!r}, mode={self.mode!r}, "
            f"{len(self.log)} logged events)"
        )
