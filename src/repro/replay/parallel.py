"""Parallel candidate evaluation over a self-healing process pool.

DiffProv's candidate phases — the minimality post-pass, autoref's
reference sweep — evaluate many independent replays whose inputs are
known up front.  This module fans them out over a
:mod:`concurrent.futures` process pool while keeping the *outcome*
byte-identical to a serial run:

- The evaluation context is pickled **once** and shipped to each worker
  through the pool initializer; jobs are dispatched by index, so the
  per-job payload is a single integer.
- Results come back as ordered ``("ok", value)`` / ``("err", exc)``
  pairs.  Callers consume them in serial order and re-raise an error
  exactly where the serial pass would have hit it; results the serial
  pass would never have computed are simply discarded.
- Workers operate on unpickled *clones* of the context — mutations
  never reach the parent.  The inline fallback (no usable pool, or a
  single job) preserves the same isolation by evaluating against a
  fresh unpickle per job.

Self-healing (docs/resilience.md): every job is a pure function of the
shipped context and its index, so any failed attempt can simply be run
again.  When a worker dies mid-wave (``BrokenProcessPool`` — an OOM
kill, a segfaulting extension, or the ``worker-crash`` fault kind) the
evaluator respawns the pool up to
``ResiliencePolicy.max_pool_restarts`` times and re-submits only the
candidates without results; if pools keep dying, the survivors are
evaluated inline in the parent.  A :class:`ResiliencePolicy` can also
bound per-candidate wall-clock (timed-out candidates are abandoned on
the pool and recomputed inline) and hedge stragglers with a duplicate
submission.  All of it is counted: ``parallel.pool_restarts``,
``parallel.timeouts``, ``parallel.hedges``, ``parallel.inline_fallbacks``.

``workers=1`` callers should not construct an evaluator at all — the
plain serial code path is the reference behaviour the pool is measured
against.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple as PyTuple

from ..errors import ReproError
from ..faults.injector import worker_crash_decision
from ..observability import active as _active_telemetry
from ..resilience.policy import ResiliencePolicy

__all__ = ["CandidateEvaluator", "pool_mp_context"]


def pool_mp_context():
    """The multiprocessing context for diagnosis worker pools.

    Prefer fork on platforms that have it: parent state is shared
    copy-on-write and worker start-up is milliseconds.  Spawn-only
    platforms get the default context — identical semantics, slower
    start.  Shared with the service's persistent worker fleet
    (:mod:`repro.service.fleet`), which runs the same evaluation code
    one shard per process.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()

# Per-process evaluation context, installed by the pool initializer so
# every job in a worker shares one unpickled copy.
_WORKER_CONTEXT = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = pickle.loads(payload)


def _run_job(index: int, attempt: int = 0):
    func, shared, crash = _WORKER_CONTEXT
    if crash is not None and attempt == 0:
        seed, rate = crash
        if worker_crash_decision(seed, rate, index):
            # Simulated worker death: exit hard enough that the pool
            # sees a vanished process, not a raised exception.  Only
            # the first attempt crashes, so the healed pool's re-run
            # (attempt 1) completes deterministically.
            os._exit(66)
    try:
        return ("ok", func(shared, index))
    except Exception as exc:  # noqa: BLE001 - transported to the caller
        try:
            pickle.dumps(exc)
        except Exception:
            exc = ReproError(f"{type(exc).__name__}: {exc}")
        return ("err", exc)


class CandidateEvaluator:
    """Evaluates ``func(shared, i)`` for ``i in range(count)`` in parallel.

    ``func`` must be a module-level callable (pickled by reference) and
    ``shared`` a picklable context.  Results preserve job order.
    ``faults`` (a FaultInjector over a plan with ``worker_crash > 0``)
    arms the simulated worker-crash fault; ``policy`` tunes the healing
    behaviour.
    """

    def __init__(self, workers: int = 1, telemetry=None,
                 policy: Optional[ResiliencePolicy] = None, faults=None):
        self.workers = max(1, int(workers))
        self.telemetry = _active_telemetry(telemetry)
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.faults = faults
        # Healing counters, cumulative across waves; callers fold them
        # into report.resilience.
        self.pool_restarts = 0
        self.timeouts = 0
        self.hedges = 0
        self.inline_fallbacks = 0

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def counters(self) -> Dict[str, int]:
        return {
            "pool_restarts": self.pool_restarts,
            "timeouts": self.timeouts,
            "hedges": self.hedges,
            "inline_fallbacks": self.inline_fallbacks,
        }

    def evaluate(
        self, func, shared, count: int
    ) -> Optional[List[PyTuple[str, Any]]]:
        """Ordered ``("ok", value)`` / ``("err", exc)`` results.

        Returns ``None`` when the context cannot be pickled (e.g. an
        execution stand-in holding live OS resources) — the caller
        falls back to its serial path.
        """
        if count <= 0:
            return []
        crash = None
        if self.faults is not None and self.faults.plan.worker_crash > 0.0:
            crash = (self.faults.plan.seed, self.faults.plan.worker_crash)
        try:
            payload = pickle.dumps(
                (func, shared, crash), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            if self.telemetry is not None:
                self.telemetry.inc("parallel.unpicklable_contexts")
            return None
        if self.telemetry is not None:
            self.telemetry.inc("parallel.waves")
            self.telemetry.inc("parallel.jobs", count)
        if not self.parallel or count == 1:
            return self._inline(payload, count)
        try:
            return self._pooled(payload, count)
        except (OSError, RuntimeError, concurrent.futures.BrokenExecutor):
            # Pool-level failure that healing could not contain (fork
            # unavailable, resource limits): the inline path is slower
            # but has identical semantics.
            if self.telemetry is not None:
                self.telemetry.inc("parallel.pool_failures")
            return self._inline(payload, count)

    # -- pooled path ---------------------------------------------------------

    def _pooled(self, payload: bytes, count: int) -> List[PyTuple[str, Any]]:
        results: Dict[int, PyTuple[str, Any]] = {}
        pending = list(range(count))
        restarts_left = self.policy.max_pool_restarts
        while pending:
            survivors = self._pool_round(payload, pending, results)
            if not survivors:
                break
            # The pool died mid-wave.  Jobs are pure functions of
            # (context, index), so the unfinished ones are simply
            # resubmitted to a fresh pool — bounded, then inline.
            if restarts_left <= 0:
                self.inline_fallbacks += len(survivors)
                if self.telemetry is not None:
                    self.telemetry.inc(
                        "parallel.inline_fallbacks", len(survivors)
                    )
                for index in survivors:
                    results[index] = self._inline_one(payload, index)
                break
            restarts_left -= 1
            self.pool_restarts += 1
            if self.telemetry is not None:
                self.telemetry.inc("parallel.pool_restarts")
            pending = survivors
        return [results[index] for index in range(count)]

    def _pool_round(
        self,
        payload: bytes,
        pending: List[int],
        results: Dict[int, PyTuple[str, Any]],
    ) -> List[int]:
        """One pool lifetime: run ``pending``, fill ``results``.

        Returns the indices still unresolved when the pool broke (empty
        when the round completed cleanly).
        """
        # The payload rides through the initializer, so every context
        # pool_mp_context() can return works identically.
        mp_context = pool_mp_context()
        attempt = 0 if not self.pool_restarts else 1
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)),
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(payload,),
        )
        clean = True
        timeouts_before = self.timeouts
        try:
            futures = {
                index: pool.submit(_run_job, index, attempt)
                for index in pending
            }
            for index in pending:
                if index in results:
                    continue
                try:
                    results[index] = self._await_one(
                        pool, futures, index, attempt, payload
                    )
                except concurrent.futures.process.BrokenProcessPool:
                    clean = False
                    return [i for i in pending if i not in results]
        finally:
            # A hung (timed-out, abandoned) worker must not block
            # shutdown; an abandoned future's eventual result is
            # simply discarded.
            if self.timeouts > timeouts_before:
                clean = False
            pool.shutdown(wait=clean, cancel_futures=not clean)
        return []

    def _await_one(self, pool, futures, index, attempt, payload):
        """Resolve one candidate, applying timeout and hedging policy."""
        future = futures[index]
        timeout = self.policy.candidate_timeout_s
        hedge_after = self.policy.hedge_after_s
        if hedge_after is not None:
            done, _ = concurrent.futures.wait([future], timeout=hedge_after)
            if not done:
                # Straggler: race a duplicate submission.  Both attempts
                # compute the same pure function, so first-wins is safe.
                self.hedges += 1
                if self.telemetry is not None:
                    self.telemetry.inc("parallel.hedges")
                hedged = pool.submit(_run_job, index, max(attempt, 1))
                remaining = None
                if timeout is not None:
                    remaining = max(0.0, timeout - hedge_after)
                done, _ = concurrent.futures.wait(
                    [future, hedged],
                    timeout=remaining,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if done:
                    return self._future_outcome(done.pop())
                return self._timeout_fallback(payload, index)
        try:
            future.exception(timeout=timeout)
        except concurrent.futures.TimeoutError:
            return self._timeout_fallback(payload, index)
        return self._future_outcome(future)

    @staticmethod
    def _future_outcome(future) -> PyTuple[str, Any]:
        # A broken pool surfaces as the *stored* exception of every
        # in-flight future — re-raise it so the healing loop sees a
        # dead pool, not a per-candidate error.
        exc = future.exception()
        if isinstance(exc, concurrent.futures.process.BrokenProcessPool):
            raise exc
        return ("err", exc) if exc is not None else future.result()

    def _timeout_fallback(self, payload: bytes, index: int):
        """A candidate blew its wall-clock budget: abandon the pool
        attempt and recompute inline (deterministic ⇒ same result)."""
        self.timeouts += 1
        self.inline_fallbacks += 1
        if self.telemetry is not None:
            self.telemetry.inc("parallel.timeouts")
            self.telemetry.inc("parallel.inline_fallbacks")
        return self._inline_one(payload, index)

    # -- inline path ---------------------------------------------------------

    def _inline(self, payload: bytes, count: int) -> List[PyTuple[str, Any]]:
        """Serial evaluation with worker-grade isolation.

        A fresh unpickle per job: even inline, a job mutating the
        context can never influence a later job or the caller.
        """
        if self.telemetry is not None:
            self.telemetry.inc("parallel.inline_jobs", count)
        return [self._inline_one(payload, index) for index in range(count)]

    @staticmethod
    def _inline_one(payload: bytes, index: int) -> PyTuple[str, Any]:
        # attempt=1 suppresses the simulated worker crash: killing the
        # parent process would defeat the whole point of the fallback.
        func, shared, _crash = pickle.loads(payload)
        try:
            return ("ok", func(shared, index))
        except Exception as exc:  # noqa: BLE001 - ordered transport
            return ("err", exc)

    def __repr__(self):
        return (
            f"CandidateEvaluator(workers={self.workers}, "
            f"restarts={self.pool_restarts})"
        )
