"""Parallel candidate evaluation over a process pool.

DiffProv's candidate phases — the minimality post-pass, autoref's
reference sweep — evaluate many independent replays whose inputs are
known up front.  This module fans them out over a
:mod:`concurrent.futures` process pool while keeping the *outcome*
byte-identical to a serial run:

- The evaluation context is pickled **once** and shipped to each worker
  through the pool initializer; jobs are dispatched by index, so the
  per-job payload is a single integer.
- Results come back as ordered ``("ok", value)`` / ``("err", exc)``
  pairs.  Callers consume them in serial order and re-raise an error
  exactly where the serial pass would have hit it; results the serial
  pass would never have computed are simply discarded.
- Workers operate on unpickled *clones* of the context — mutations
  never reach the parent.  The inline fallback (no usable pool, or a
  single job) preserves the same isolation by evaluating against a
  fresh unpickle per job.

``workers=1`` callers should not construct an evaluator at all — the
plain serial code path is the reference behaviour the pool is measured
against.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import pickle
from typing import Any, List, Optional, Tuple as PyTuple

from ..errors import ReproError
from ..observability import active as _active_telemetry

__all__ = ["CandidateEvaluator"]

# Per-process evaluation context, installed by the pool initializer so
# every job in a worker shares one unpickled copy.
_WORKER_CONTEXT = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = pickle.loads(payload)


def _run_job(index: int):
    func, shared = _WORKER_CONTEXT
    try:
        return ("ok", func(shared, index))
    except Exception as exc:  # noqa: BLE001 - transported to the caller
        try:
            pickle.dumps(exc)
        except Exception:
            exc = ReproError(f"{type(exc).__name__}: {exc}")
        return ("err", exc)


class CandidateEvaluator:
    """Evaluates ``func(shared, i)`` for ``i in range(count)`` in parallel.

    ``func`` must be a module-level callable (pickled by reference) and
    ``shared`` a picklable context.  Results preserve job order.
    """

    def __init__(self, workers: int = 1, telemetry=None):
        self.workers = max(1, int(workers))
        self.telemetry = _active_telemetry(telemetry)

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def evaluate(
        self, func, shared, count: int
    ) -> Optional[List[PyTuple[str, Any]]]:
        """Ordered ``("ok", value)`` / ``("err", exc)`` results.

        Returns ``None`` when the context cannot be pickled (e.g. an
        execution stand-in holding live OS resources) — the caller
        falls back to its serial path.
        """
        if count <= 0:
            return []
        try:
            payload = pickle.dumps(
                (func, shared), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            if self.telemetry is not None:
                self.telemetry.inc("parallel.unpicklable_contexts")
            return None
        if self.telemetry is not None:
            self.telemetry.inc("parallel.waves")
            self.telemetry.inc("parallel.jobs", count)
        if not self.parallel or count == 1:
            return self._inline(payload, count)
        try:
            return self._pooled(payload, count)
        except (OSError, RuntimeError, concurrent.futures.BrokenExecutor):
            # Pool-level failure (fork unavailable, resource limits):
            # the inline path is slower but has identical semantics.
            if self.telemetry is not None:
                self.telemetry.inc("parallel.pool_failures")
            return self._inline(payload, count)

    def _pooled(self, payload: bytes, count: int) -> List[PyTuple[str, Any]]:
        # Prefer fork on platforms that have it: the context is shared
        # copy-on-write and worker start-up is milliseconds.  The
        # payload still rides through the initializer, so spawn-only
        # platforms work identically, just with a slower start.
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            mp_context = multiprocessing.get_context()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, count),
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            futures = [pool.submit(_run_job, index) for index in range(count)]
            results: List[PyTuple[str, Any]] = []
            for future in futures:
                exc = future.exception()
                results.append(
                    ("err", exc) if exc is not None else future.result()
                )
        return results

    def _inline(self, payload: bytes, count: int) -> List[PyTuple[str, Any]]:
        """Serial evaluation with worker-grade isolation.

        A fresh unpickle per job: even inline, a job mutating the
        context can never influence a later job or the caller.
        """
        if self.telemetry is not None:
            self.telemetry.inc("parallel.inline_jobs", count)
        results: List[PyTuple[str, Any]] = []
        for index in range(count):
            func, shared = pickle.loads(payload)
            try:
                results.append(("ok", func(shared, index)))
            except Exception as exc:  # noqa: BLE001 - ordered transport
                results.append(("err", exc))
        return results

    def __repr__(self):
        return f"CandidateEvaluator(workers={self.workers})"
