"""Length+digest framing for persisted replay artifacts.

Replay snapshots and dumped event logs are trusted inputs to the
diagnosis: a truncated pickle used to crash the cache mid-minimization,
and a corrupt log line silently changed what was replayed.  Framing
makes corruption *detectable* before the payload is interpreted:

- :func:`frame` prefixes a payload with a magic tag, its length, and a
  SHA-256 digest;
- :func:`unframe` verifies all three and raises a typed
  :class:`~repro.errors.IntegrityError` on any mismatch — never an
  unpickling crash.

The journal uses the line-oriented variant (:func:`checksum_line` /
:func:`verify_line`): each JSONL entry carries a CRC32 prefix, so a
torn tail line after a crash is recognized and discarded rather than
parsed as garbage.
"""

from __future__ import annotations

import hashlib
import struct
import zlib

from ..errors import IntegrityError

__all__ = [
    "FRAME_MAGIC",
    "frame",
    "unframe",
    "checksum_line",
    "verify_line",
    "digest_text",
]

# 4-byte magic + 8-byte big-endian length + 32-byte SHA-256 digest.
FRAME_MAGIC = b"RPF1"
_LEN = struct.Struct(">Q")
HEADER_BYTES = len(FRAME_MAGIC) + _LEN.size + hashlib.sha256().digest_size


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a magic/length/digest header."""
    digest = hashlib.sha256(payload).digest()
    return FRAME_MAGIC + _LEN.pack(len(payload)) + digest + payload


def unframe(data: bytes) -> bytes:
    """Verify and strip a :func:`frame` header.

    Raises :class:`IntegrityError` on a bad magic tag, a length
    mismatch (truncation), or a digest mismatch (bit rot) — the three
    ways a persisted snapshot goes bad.
    """
    if len(data) < HEADER_BYTES:
        raise IntegrityError(
            f"framed payload truncated: {len(data)} bytes is shorter than "
            f"the {HEADER_BYTES}-byte header"
        )
    if data[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise IntegrityError(
            f"bad frame magic {data[:len(FRAME_MAGIC)]!r} "
            f"(expected {FRAME_MAGIC!r})"
        )
    offset = len(FRAME_MAGIC)
    (length,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    digest = data[offset : offset + hashlib.sha256().digest_size]
    offset += hashlib.sha256().digest_size
    payload = data[offset:]
    if len(payload) != length:
        raise IntegrityError(
            f"framed payload truncated: header promises {length} bytes, "
            f"{len(payload)} present"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise IntegrityError("framed payload digest mismatch (corrupt bytes)")
    return payload


def checksum_line(text: str) -> str:
    """One journal line: ``crc32hex text`` (no trailing newline)."""
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}"


def verify_line(line: str):
    """The text of a checksummed line, or ``None`` if torn/corrupt."""
    prefix, sep, text = line.partition(" ")
    if not sep or len(prefix) != 8:
        return None
    try:
        expected = int(prefix, 16)
    except ValueError:
        return None
    if zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    return text


def digest_text(text: str) -> str:
    """SHA-256 hex digest of a text body (event-log dump trailers)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
