"""End-to-end diagnosis deadlines.

A production diagnosis has a budget: the operator would rather get the
best-so-far candidates after N seconds than a perfect answer that never
arrives.  A :class:`Deadline` is a monotonic expiry time threaded
through every long-running layer — the engine's step loop, distributed
provenance fetches, candidate waves — each of which calls
:meth:`Deadline.check` at its natural cadence.  Expiry raises
:class:`~repro.errors.DeadlineExceeded`; DiffProv catches it and
degrades to a partial report (docs/resilience.md).

The clock is injectable so tests can drive expiry deterministically.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Optional, Union

from ..errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget with a fixed expiry instant."""

    __slots__ = ("seconds", "clock", "_expires")

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = _time.monotonic):
        if seconds < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {seconds}")
        self.seconds = float(seconds)
        self.clock = clock
        self._expires = clock() + self.seconds

    @classmethod
    def of(cls, value: Union[None, float, "Deadline"]) -> Optional["Deadline"]:
        """Normalize an options value: None, a seconds budget, or an
        already-running Deadline (shared across a sweep).

        A negative budget — e.g. a queue wait that already consumed the
        whole request deadline — is clamped to zero: the budget is
        *already expired*, which every consumer handles by degrading to
        a partial result.  Raising here instead would turn an expired
        budget into a crash at the start of the candidate sweep.
        """
        if value is None or isinstance(value, Deadline):
            return value
        return cls(max(0.0, float(value)))

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires - self.clock()

    def timeout(self, floor: float = 0.0) -> float:
        """Remaining budget clamped to ``>= floor``.

        The safe form to hand to futures/selectors/``wait`` calls,
        which reject negative timeouts: an expired deadline yields the
        floor (default 0 — poll and fall into the degradation path)
        rather than a ``ValueError`` deep inside the wait machinery.
        """
        return max(floor, self.remaining())

    @property
    def expired(self) -> bool:
        return self.clock() >= self._expires

    def check(self, phase: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        overdue = self.clock() - self._expires
        if overdue >= 0:
            raise DeadlineExceeded(
                f"diagnosis deadline of {self.seconds:g}s exceeded"
                + (f" during {phase}" if phase else "")
                + f" (over by {overdue:.3f}s)",
                phase=phase,
            )

    def __repr__(self):
        return f"Deadline({self.seconds:g}s, remaining={self.remaining():.3f}s)"
