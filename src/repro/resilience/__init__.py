"""Crash-safety for the diagnoser itself (docs/resilience.md).

PR 1's fault injection simulates failures in the *diagnosed* network;
this package covers failures of the *diagnosing host*:

- :mod:`repro.resilience.journal` — a write-ahead journal of the
  candidate search, so a killed diagnosis resumes instead of restarting
  (``Session.diagnose(resume_from=...)``, ``repro diagnose --resume``);
- :mod:`repro.resilience.integrity` — length+digest framing for cached
  replay snapshots and dumped event logs, so corruption is a recorded
  miss or a typed error, never an unpickling crash;
- :mod:`repro.resilience.deadline` — an end-to-end wall-clock budget
  threaded through engine steps, distributed fetches, and candidate
  waves (``--deadline-s``);
- :mod:`repro.resilience.policy` — the self-healing knobs of the
  parallel candidate evaluator (pool respawn, timeouts, hedging).
"""

from .deadline import Deadline
from .integrity import checksum_line, digest_text, frame, unframe, verify_line
from .journal import SCHEMA_VERSION, DiagnosisJournal, request_journal_path
from .policy import ResiliencePolicy

__all__ = [
    "Deadline",
    "DiagnosisJournal",
    "ResiliencePolicy",
    "SCHEMA_VERSION",
    "request_journal_path",
    "frame",
    "unframe",
    "checksum_line",
    "verify_line",
    "digest_text",
]
