"""Tuning knobs for the self-healing candidate evaluator.

The defaults are chosen so the pool heals itself without operator
input: a dead pool (``BrokenProcessPool``) is respawned up to
``max_pool_restarts`` times with the in-flight candidates re-submitted,
after which the survivors are evaluated inline; per-candidate timeouts
and hedged retries are off unless the operator budgets them, since a
wall-clock cutoff is workload-specific.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ResiliencePolicy"]


class ResiliencePolicy:
    """How hard the evaluator fights to keep a candidate wave alive."""

    __slots__ = ("candidate_timeout_s", "hedge_after_s", "max_pool_restarts")

    def __init__(
        self,
        candidate_timeout_s: Optional[float] = None,
        hedge_after_s: Optional[float] = None,
        max_pool_restarts: int = 2,
    ):
        # None disables: no per-candidate wall-clock cutoff.  A candidate
        # that exceeds the cutoff is abandoned on the pool and recomputed
        # inline (deterministic function → identical result).
        self.candidate_timeout_s = candidate_timeout_s
        # None disables: no hedged duplicate of stragglers.  With a
        # value, a candidate still running after that many seconds gets
        # a second submission; whichever attempt finishes first wins
        # (both compute the same deterministic function).
        self.hedge_after_s = hedge_after_s
        if max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        self.max_pool_restarts = int(max_pool_restarts)

    def __repr__(self):
        return (
            f"ResiliencePolicy(timeout={self.candidate_timeout_s}, "
            f"hedge={self.hedge_after_s}, "
            f"restarts={self.max_pool_restarts})"
        )
