"""The write-ahead diagnosis journal.

A diagnosis that dies — SIGKILL, OOM, a pulled plug — used to lose all
of its candidate-replay work.  The journal makes the expensive part of
the search *durable*: every phase boundary, explored change-set, and
candidate verdict from DiffProv's minimality post-pass and autoref's
reference sweep is appended as one checksummed JSON line and fsync'd
before the diagnosis moves on.  Resuming (``Session.diagnose(...,
resume_from=...)`` / ``repro diagnose --resume``) replays the recorded
verdicts instead of re-running their candidate replays, and — because
the diagnosis itself is deterministic — produces a ``canonical_json()``
report byte-identical to an uninterrupted run (docs/resilience.md).

File format (schema version 1)::

    <crc32hex> {"seq": 0, "type": "start", "schema": 1, "fingerprint": {...}}
    <crc32hex> {"seq": 1, "type": "phase", "name": "query"}
    <crc32hex> {"seq": 2, "type": "round", "number": 1, "changes": [...]}
    <crc32hex> {"seq": 3, "type": "verdict", "kind": "minimize", "key": "...",
                "value": true}
    <crc32hex> {"seq": 4, "type": "result", "success": true, "sha": "..."}

Crash-safety contract: entries are append-only; a torn or corrupt tail
line (the crash landed mid-write) is detected by its checksum and
discarded on resume — everything before it is intact by fsync order.
A *mismatched* journal (different scenario, different options) is a
typed :class:`~repro.errors.JournalError`: resuming against the wrong
search would corrupt the report.
"""

from __future__ import annotations

import json
import os
import time as _time
from typing import Dict, List, Optional

from ..errors import JournalError
from .integrity import checksum_line, verify_line

__all__ = ["DiagnosisJournal", "SCHEMA_VERSION", "request_journal_path"]

SCHEMA_VERSION = 1


def request_journal_path(directory: str, request_key: str) -> str:
    """The journal path for one service request.

    The diagnosis service (:mod:`repro.service`) namespaces journals
    per request under one directory so a crashed worker's successor can
    resume exactly the request it was handed.  ``request_key`` is
    sanitised to a filesystem-safe slug — two distinct keys may only
    collide if they differ solely in unsafe characters, which the
    server avoids by prefixing its own sequence number.
    """
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in str(request_key)
    )[:120] or "request"
    return os.path.join(str(directory), f"req-{safe}.journal")

# Test-only hooks: hold the process inside a journal append so a
# subprocess test can deliver SIGINT/SIGKILL at a deterministic point
# (after a named phase entry, or after the Nth verdict write).  Unset
# in production; see tests/resilience/.
_HOLD_PHASE_ENV = "REPRO_TEST_HOLD_PHASE"
_HOLD_AFTER_VERDICTS_ENV = "REPRO_TEST_HOLD_AFTER_VERDICTS"
_HOLD_SECONDS_ENV = "REPRO_TEST_HOLD_S"


class DiagnosisJournal:
    """Appendable, resumable record of one diagnosis search.

    ``fingerprint`` identifies the search (log fingerprints, events,
    option signature); on resume it must match the header of the
    existing file.  ``fsync=False`` trades crash-safety for speed — the
    benchmark knob; the default honours the write-ahead contract.
    """

    def __init__(
        self,
        path: str,
        fingerprint: Optional[Dict[str, object]] = None,
        resume: bool = False,
        fsync: bool = True,
    ):
        self.path = str(path)
        self.fingerprint = dict(fingerprint or {})
        self.fsync = bool(fsync)
        self.resumed = False
        # Verdicts recovered from a previous run, keyed (kind, key).
        self._verdicts: Dict[tuple, object] = {}
        self.entries_replayed = 0
        # Resume savings / cost counters (surfaced in report.resilience).
        self.skipped = 0
        self.writes = 0
        self._verdict_writes = 0
        self._seq = 0
        self._handle = None
        self._phases: List[str] = []
        if resume and os.path.exists(self.path) and os.path.getsize(self.path):
            self._load_and_reopen()
        else:
            self._open_fresh()

    # -- opening -------------------------------------------------------------

    def _open_fresh(self) -> None:
        self._handle = open(self.path, "w", encoding="utf-8")
        self._append(
            "start", schema=SCHEMA_VERSION, fingerprint=self.fingerprint
        )

    def _load_and_reopen(self) -> None:
        entries, valid_bytes = self._read_valid_prefix()
        if not entries or entries[0].get("type") != "start":
            # Nothing trustworthy in the file (e.g. killed before the
            # header hit disk): start over.
            self._open_fresh()
            return
        header = entries[0]
        if header.get("schema") != SCHEMA_VERSION:
            raise JournalError(
                f"journal {self.path} has schema "
                f"{header.get('schema')!r}; this build writes "
                f"{SCHEMA_VERSION} and cannot resume across versions"
            )
        recorded = header.get("fingerprint") or {}
        if self.fingerprint and recorded != self.fingerprint:
            mismatched = sorted(
                key
                for key in set(recorded) | set(self.fingerprint)
                if recorded.get(key) != self.fingerprint.get(key)
            )
            raise JournalError(
                f"journal {self.path} was written by a different diagnosis "
                f"(mismatched: {', '.join(mismatched) or 'fingerprint'}); "
                f"refusing to resume"
            )
        for entry in entries[1:]:
            if entry.get("type") == "verdict":
                self._verdicts[(entry.get("kind"), entry.get("key"))] = (
                    entry.get("value")
                )
            elif entry.get("type") == "phase":
                self._phases.append(entry.get("name", ""))
        self.entries_replayed = len(entries)
        self.resumed = True
        self._seq = max(int(e.get("seq", 0)) for e in entries) + 1
        # Drop the torn tail (if any) before appending new entries.
        with open(self.path, "r+", encoding="utf-8") as handle:
            handle.truncate(valid_bytes)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _read_valid_prefix(self):
        entries: List[dict] = []
        valid_bytes = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError:
                    break
                if not raw.endswith(b"\n"):
                    break  # torn tail: the write never completed
                text = verify_line(line.rstrip("\n"))
                if text is None:
                    break
                try:
                    entry = json.loads(text)
                except ValueError:
                    break
                entries.append(entry)
                valid_bytes += len(raw)
        return entries, valid_bytes

    # -- appending -----------------------------------------------------------

    # Entry types whose loss would cost recomputation on resume: these
    # are fsync'd before the diagnosis moves on (the write-ahead
    # guarantee).  Phase/round markers are informative — a torn one is
    # discarded harmlessly — so they ride along with the next durable
    # write instead of paying their own fsync.
    _DURABLE_TYPES = frozenset({"start", "verdict", "result"})

    def _append(self, entry_type: str, **payload) -> None:
        if self._handle is None:
            return
        entry = {"seq": self._seq, "type": entry_type}
        entry.update(payload)
        self._seq += 1
        text = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        self._handle.write(checksum_line(text) + "\n")
        self._handle.flush()
        if self.fsync and entry_type in self._DURABLE_TYPES:
            os.fsync(self._handle.fileno())
        self.writes += 1

    def phase(self, name: str) -> None:
        """Record a phase boundary (query, rounds, minimize, ...)."""
        self._phases.append(name)
        self._append("phase", name=name)
        if os.environ.get(_HOLD_PHASE_ENV) == name:
            self._test_hold()

    def round(self, number: int, changes) -> None:
        """Record a committed round and its explored change-set."""
        self._append(
            "round",
            number=number,
            changes=[change.describe() for change in changes],
        )

    def record(self, kind: str, key: str, value) -> None:
        """Journal one candidate verdict (idempotent per key)."""
        if (kind, key) in self._verdicts:
            return
        self._verdicts[(kind, key)] = value
        self._append("verdict", kind=kind, key=key, value=value)
        self._verdict_writes += 1
        hold_after = os.environ.get(_HOLD_AFTER_VERDICTS_ENV)
        if hold_after is not None and self._verdict_writes == int(hold_after):
            self._test_hold()

    def lookup(self, kind: str, key: str):
        """A recorded verdict, or None.  Hits count as skipped work."""
        value = self._verdicts.get((kind, key))
        if value is not None:
            self.skipped += 1
        return value

    @property
    def has_verdicts(self) -> bool:
        """Whether any verdicts were recovered or recorded."""
        return bool(self._verdicts)

    def result(self, success: bool, sha: str, **payload) -> None:
        """Record a finished diagnosis (the journal's commit marker)."""
        self._append("result", success=success, sha=sha, **payload)

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.flush()
            finally:
                self._handle.close()
                self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def progress(self) -> str:
        """One-line human summary (the CLI's Ctrl-C partial report)."""
        return (
            f"{self.path}: {self.writes} entr{'y' if self.writes == 1 else 'ies'} "
            f"written, {len(self._verdicts)} verdict(s) recorded, "
            f"last phase {self._phases[-1] if self._phases else 'none'!r}"
        )

    @staticmethod
    def _test_hold() -> None:
        _time.sleep(float(os.environ.get(_HOLD_SECONDS_ENV, "30")))

    def __repr__(self):
        return (
            f"DiagnosisJournal({self.path!r}, resumed={self.resumed}, "
            f"verdicts={len(self._verdicts)})"
        )
