"""The ``diffprov`` command-line debugger.

Subcommands::

    diffprov scenarios                 list the built-in scenarios
    diffprov diagnose SDN1             run DiffProv on a scenario
    diffprov repair SDN1               diagnose, then rank replay-verified
                                       rollback plans (docs/repair.md)
    diffprov autoref DNS               diagnose with a discovered reference
    diffprov tree SDN1 --side bad      print a provenance tree (--dot for
                                       Graphviz, --diff for Figure 2 style)
    diffprov export DNS --out g.jsonl  dump a provenance graph
    diffprov table1                    regenerate Table 1
    diffprov survey                    the Section 2.4 survey statistics
    diffprov unsuitable                the Section 6.3 reference study
    diffprov stanford                  the Section 6.7 complex network
    diffprov serve --port 8732         run the diagnosis service
                                       (docs/service.md)
    diffprov top --port 8732           live service dashboard (polls the
                                       stats verb; docs/observability.md)

Each subcommand prints human-readable output; ``--json`` emits
machine-readable results instead.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
from typing import List, Optional

from . import survey as survey_module
from .api import Session
from .datalog.config import BACKENDS, PROVENANCE_MODES
from .errors import FaultSpecError
from .observability import format_metrics
from .scenarios import ALL_SCENARIOS

__all__ = ["main", "build_parser"]


def _scenario_argument(command) -> None:
    # type=str.upper makes scenario names case-insensitive (sdn1 == SDN1).
    command.add_argument(
        "scenario", type=str.upper, choices=sorted(ALL_SCENARIOS)
    )


def _tuning_parent() -> argparse.ArgumentParser:
    """The diagnosis knobs shared by every subcommand that runs DiffProv.

    One parent parser keeps ``diagnose`` and ``autoref`` in lockstep: a
    knob added here appears on both, with the same spelling and default
    (they used to drift — ``autoref`` once lacked ``--max-rounds``,
    ``--minimize`` and ``--faults`` entirely).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--max-rounds", type=int, default=10, help="round limit (default 10)"
    )
    parent.add_argument(
        "--no-taint",
        action="store_true",
        help="disable taint formulas (ablation; expect failure)",
    )
    parent.add_argument(
        "--minimize",
        action="store_true",
        help="greedy minimality post-pass on the returned changes",
    )
    parent.add_argument(
        "--repair",
        action="store_true",
        help="verify ranked rollback plans after a successful diagnosis "
        "(docs/repair.md)",
    )
    parent.add_argument(
        "--faults",
        metavar="SPEC",
        help="deterministic fault plan, e.g. "
        "'loss=0.1,fetch-loss=0.15,seed=7' (see docs/faults.md)",
    )
    parent.add_argument(
        "--engine",
        choices=BACKENDS,
        help="evaluation backend: compiled (the default), indexed, or "
        "the linear-scan reference; reports are byte-identical across "
        "backends (see docs/performance.md)",
    )
    parent.add_argument(
        "--provenance",
        choices=PROVENANCE_MODES,
        help="provenance recording mode (default: the chosen backend's "
        "natural mode — annotated/lazy/eager respectively)",
    )
    parent.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for candidate replays; reports stay "
        "byte-identical to the serial run (see docs/performance.md)",
    )
    parent.add_argument(
        "--no-replay-cache",
        action="store_true",
        help="disable the baseline snapshot cache between replays",
    )
    parent.add_argument(
        "--journal",
        metavar="FILE",
        help="write-ahead diagnosis journal; with --resume, verdicts "
        "recorded by a previous (possibly killed) run are skipped "
        "(see docs/resilience.md)",
    )
    parent.add_argument(
        "--resume",
        action="store_true",
        help="resume from an existing --journal file",
    )
    parent.add_argument(
        "--deadline-s",
        type=float,
        metavar="SECONDS",
        help="end-to-end wall-clock budget; an expired diagnosis "
        "degrades to a partial report instead of running on",
    )
    parent.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario parameter, repeatable; VALUE is coerced to int, "
        "bool ('true'/'false'), float, or str — e.g. --param flaps=50 "
        "--param probes_per_phase=3",
    )
    parent.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print the diagnosis metrics snapshot "
        "(see docs/observability.md)",
    )
    parent.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the diagnosis span tree as a Chrome trace_event "
        "JSON file (open in chrome://tracing or Perfetto)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="diffprov",
        description="Differential provenance debugger (SIGCOMM'16 reproduction)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON output")
    commands = parser.add_subparsers(dest="command", required=True)
    tuning = _tuning_parent()

    commands.add_parser("scenarios", help="list built-in diagnostic scenarios")

    diagnose = commands.add_parser(
        "diagnose", help="run DiffProv on a scenario", parents=[tuning]
    )
    _scenario_argument(diagnose)

    repair_cmd = commands.add_parser(
        "repair",
        help="diagnose, then plan and replay-verify ranked rollback "
        "fixes (docs/repair.md)",
        parents=[tuning],
    )
    _scenario_argument(repair_cmd)

    autoref = commands.add_parser(
        "autoref",
        help="diagnose without an operator-supplied reference",
        parents=[tuning],
    )
    _scenario_argument(autoref)
    autoref.add_argument(
        "--limit", type=int, default=10, help="candidates to try (default 10)"
    )

    monitor = commands.add_parser(
        "monitor",
        help="watch a scenario's event stream and diagnose detections "
        "online (docs/streaming.md)",
        parents=[tuning],
    )
    _scenario_argument(monitor)
    monitor.add_argument(
        "--capacity", type=int, default=24, metavar="EVENTS",
        help="sliding-window size; older state is folded into a base "
        "snapshot and expired probes are GC'd (default 24)",
    )
    monitor.add_argument(
        "--lateness", type=int, default=8, metavar="EVENTS",
        help="ingest reorder tolerance before a missing event becomes "
        "a gap (default 8)",
    )
    monitor.add_argument(
        "--max-pending", type=int, default=8, metavar="N",
        help="detections awaiting diagnosis before the oldest is shed "
        "(default 8)",
    )
    monitor.add_argument(
        "--diagnose-every", type=int, default=1, metavar="N",
        help="run pending diagnoses every Nth delivery (default 1 = "
        "immediately)",
    )
    monitor.add_argument(
        "--stream", metavar="FILE",
        help="ingest this NDJSON stream file instead of tapping the "
        "scenario's emulator",
    )
    monitor.add_argument(
        "--dump-stream", metavar="FILE",
        help="write the scenario's (possibly fault-perturbed) stream "
        "to FILE and exit without monitoring",
    )
    monitor.add_argument(
        "--records-out", metavar="FILE",
        help="also write the emitted records as canonical JSON lines "
        "(byte-comparable across runs and resume)",
    )

    tree = commands.add_parser("tree", help="print a provenance tree")
    _scenario_argument(tree)
    tree.add_argument("--side", choices=("good", "bad"), default="bad")
    tree.add_argument(
        "--view", choices=("tuple", "vertex"), default="tuple",
        help="collapsed tuple view (default) or the full vertex tree",
    )
    tree.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz DOT instead of text (Figure 2 style)",
    )
    tree.add_argument(
        "--diff",
        action="store_true",
        help="with --dot: draw both trees, shared vertexes green",
    )

    export = commands.add_parser(
        "export", help="dump a scenario's provenance graph as JSON lines"
    )
    _scenario_argument(export)
    export.add_argument("--out", required=True, help="output path (.jsonl)")
    export.add_argument(
        "--side", choices=("good", "bad"), default="bad",
        help="which execution's graph to dump (default bad)",
    )

    commands.add_parser("table1", help="regenerate Table 1")
    commands.add_parser("survey", help="Section 2.4 survey statistics")
    commands.add_parser("unsuitable", help="Section 6.3 unsuitable-reference study")

    stanford = commands.add_parser(
        "stanford", help="Section 6.7 complex-network diagnosis"
    )
    stanford.add_argument(
        "--full-scale",
        action="store_true",
        help="use the paper's 757k-entry configuration "
        "(seconds with the default compiled engine)",
    )
    stanford.add_argument("--background", type=int, default=120)
    stanford.add_argument(
        "--engine", choices=BACKENDS,
        help="evaluation backend (default compiled)",
    )
    stanford.add_argument(
        "--provenance", choices=PROVENANCE_MODES,
        help="provenance recording mode (default: backend's natural mode)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant diagnosis service (docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = pick a free one; printed on start)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="persistent diagnosis worker processes (default 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admitted-but-unfinished request bound (default 64)",
    )
    serve.add_argument(
        "--quota",
        action="append",
        default=[],
        metavar="TENANT=RATE[:BURST[:CONCURRENT]]",
        help="per-tenant quota, repeatable; e.g. 'monitor=2:5:1' caps "
        "tenant 'monitor' at 2 req/s, burst 5, 1 in flight "
        "('default=...' sets the catch-all quota)",
    )
    serve.add_argument(
        "--journal-dir",
        metavar="DIR",
        help="directory for per-request write-ahead journals "
        "(default: a temp dir removed on exit)",
    )
    serve.add_argument(
        "--keep-journals", action="store_true",
        help="keep journals of successful requests instead of deleting",
    )
    serve.add_argument(
        "--default-deadline-s", type=float, metavar="SECONDS",
        help="deadline applied to requests that do not carry their own",
    )
    serve.add_argument(
        "--engine", choices=BACKENDS,
        help="engine backend applied to requests that do not carry an "
        "'engine' option (default: the package's compiled default)",
    )
    serve.add_argument(
        "--provenance", choices=PROVENANCE_MODES,
        help="provenance mode paired with --engine for requests "
        "without an 'engine' option",
    )
    serve.add_argument(
        "--drain-timeout-s", type=float, default=60.0,
        help="how long SIGTERM waits for in-flight requests (default 60)",
    )
    serve.add_argument(
        "--metrics-port", type=int, metavar="PORT",
        help="also expose Prometheus-style plaintext metrics over HTTP "
        "on this port (0 = pick a free one; docs/observability.md)",
    )
    serve.add_argument(
        "--flight-capacity", type=int, default=128, metavar="N",
        help="flight-recorder ring size: last N finished requests "
        "(0 disables; dump with SIGUSR1 or the 'flight' verb)",
    )
    serve.add_argument(
        "--slo-objective", type=float, default=0.99, metavar="FRACTION",
        help="per-tenant availability objective for error-budget burn "
        "(default 0.99)",
    )
    serve.add_argument(
        "--slo-window-s", type=float, default=300.0, metavar="SECONDS",
        help="rolling window for error-budget burn (default 300)",
    )

    top = commands.add_parser(
        "top",
        help="live dashboard for a running service (polls the stats verb)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period in seconds (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "scenarios": _cmd_scenarios,
        "diagnose": _cmd_diagnose,
        "repair": _cmd_repair,
        "monitor": _cmd_monitor,
        "tree": _cmd_tree,
        "autoref": _cmd_autoref,
        "export": _cmd_export,
        "table1": _cmd_table1,
        "survey": _cmd_survey,
        "unsuitable": _cmd_unsuitable,
        "stanford": _cmd_stanford,
        "serve": _cmd_serve,
        "top": _cmd_top,
    }[args.command]
    return handler(args)


def _emit(args, data, text: str) -> int:
    try:
        if args.json:
            print(json.dumps(data, indent=2, default=str))
        else:
            print(text)
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
    return 0


def _cmd_scenarios(args) -> int:
    rows = [
        {"name": name, "description": cls.one_liner()}
        for name, cls in sorted(ALL_SCENARIOS.items())
    ]
    text = "\n".join(f"{row['name']:8s} {row['description']}" for row in rows)
    return _emit(args, rows, text)


def _engine_spec(args):
    """--engine/--provenance as an EngineConfig-coercible mapping."""
    backend = getattr(args, "engine", None)
    provenance = getattr(args, "provenance", None)
    if backend is None and provenance is None:
        return None
    spec = {}
    if backend is not None:
        spec["backend"] = backend
    if provenance is not None:
        spec["provenance"] = provenance
    return spec


def _coerce_param_value(value: str):
    """``--param`` value coercion: bool, int, float, then str.

    'true'/'false' (any case) become booleans *before* the numeric
    attempts so scenario flags read naturally; anything unparseable
    stays a string.
    """
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def _parse_params(pairs) -> dict:
    """Repeatable ``--param KEY=VALUE`` flags as a scenario-params dict."""
    params = {}
    for token in pairs:
        key, sep, value = token.partition("=")
        key = key.strip()
        if not sep or not key:
            raise FaultSpecError(
                f"--param wants KEY=VALUE, got {token!r}", token=token
            )
        params[key] = _coerce_param_value(value.strip())
    return params


def _session(args, **extra) -> Session:
    """A Session configured from the shared tuning flags."""
    params = _parse_params(getattr(args, "param", []))
    return Session(
        scenario=args.scenario,
        faults=getattr(args, "faults", None),
        engine=_engine_spec(args),
        telemetry=bool(
            getattr(args, "metrics", False) or getattr(args, "trace_out", None)
        ),
        workers=getattr(args, "workers", 1),
        replay_cache=not getattr(args, "no_replay_cache", False),
        max_rounds=getattr(args, "max_rounds", 10),
        minimize=getattr(args, "minimize", False),
        taint=not getattr(args, "no_taint", False),
        journal=getattr(args, "journal", None),
        resume=getattr(args, "resume", False),
        deadline_s=getattr(args, "deadline_s", None),
        repair=getattr(args, "repair", False),
        scenario_params=params or None,
        **extra,
    )


# Exit statuses for a diagnosis killed by a signal: 128 + signum, the
# conventional shell encoding of death-by-signal.  130 = Ctrl-C
# (SIGINT), 143 = SIGTERM — what an init system, container runtime, or
# `kill` sends for an orderly stop.
EXIT_INTERRUPTED = 130
EXIT_TERMINATED = 143


class _Terminated(Exception):
    """SIGTERM arrived; unwind through the journal scope like Ctrl-C."""


def _raise_terminated(signum, frame):
    raise _Terminated()


@contextlib.contextmanager
def _sigterm_unwinds():
    """Convert SIGTERM into an exception for the enclosed diagnosis.

    SIGTERM's default disposition kills the process where it stands —
    skipping the journal flush and the resume hint that make an
    interrupted diagnosis recoverable.  Routed through an exception it
    takes exactly the Ctrl-C path (Session's journal scope closes the
    journal on the way out) and exits 143 instead of 130.
    """
    previous = signal.signal(signal.SIGTERM, _raise_terminated)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _interrupted(args, session, cause: str = "interrupted",
                 exit_status: int = EXIT_INTERRUPTED) -> int:
    """A signal landed mid-diagnosis: report what survived.

    The journal (if any) was already flushed and closed on the way out
    of Session's journal scope, so every verdict the run computed is on
    disk; tell the operator how to pick the search back up.
    """
    print(f"{cause}: diagnosis aborted", file=sys.stderr)
    journal = getattr(session, "journal", None)
    if journal is not None:
        journal.close()  # idempotent; guarantees the flush happened
        print(f"journal flushed: {journal.progress()}", file=sys.stderr)
        print(
            f"resume with: diffprov {args.command} {args.scenario} "
            f"--journal {journal.path} --resume",
            file=sys.stderr,
        )
    return exit_status


def _terminated(args, session) -> int:
    return _interrupted(
        args, session, cause="terminated", exit_status=EXIT_TERMINATED
    )


def _telemetry_output(args, session, data, extra_lines) -> None:
    """--metrics / --trace-out handling, shared by diagnose and autoref."""
    telemetry = session.telemetry
    if telemetry is None:
        return
    if args.metrics:
        extra_lines.append("metrics:")
        extra_lines.append(format_metrics(telemetry.snapshot()))
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(telemetry.chrome_trace(), handle, indent=1)
        extra_lines.append(
            f"wrote {telemetry.tracer.span_count} span(s) to "
            f"{args.trace_out}"
        )


def _cmd_diagnose(args) -> int:
    try:
        session = _session(args)
    except FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _sigterm_unwinds():
            report = session.diagnose()
    except KeyboardInterrupt:
        return _interrupted(args, session)
    except _Terminated:
        return _terminated(args, session)
    data = {
        "scenario": args.scenario,
        "success": report.success,
        "changes": [change.describe() for change in report.changes],
        "rounds": len(report.rounds),
        "failure": report.failure_category,
        "timings": report.timings,
    }
    # Distribution accounting is attached on every run now, not just
    # degraded ones, so healthy runs show their fetch counts too.
    data["distributed"] = {
        side: repr(stats)
        for side, stats in sorted(report.distributed_stats.items())
    }
    plan = session.options.faults
    if plan is not None and not plan.is_zero():
        data["faults"] = plan.describe()
        data["degraded"] = report.degraded
        data["confidences"] = report.confidences
        data["lost_events"] = report.lost_events
        data["unknown_subtrees"] = [str(t) for t in report.unknown_subtrees]
    if report.repair is not None:
        data["repair"] = report.repair
    if report.resilience is not None:
        data["resilience"] = report.resilience
    extra_lines: List[str] = []
    if session.telemetry is not None:
        data["telemetry"] = report.telemetry
        _telemetry_output(args, session, data, extra_lines)
    text = report.summary()
    if extra_lines:
        text += "\n" + "\n".join(extra_lines)
    return _emit(args, data, text)


def _cmd_repair(args) -> int:
    """``diffprov repair``: diagnose with rollback planning forced on.

    Same output shape as ``diagnose`` (the summary gains the repair
    lines; ``--json`` gains the ``repair`` section), same journal,
    deadline and signal behaviour — the resume hint printed on Ctrl-C
    names this subcommand, and a resumed run skips both the recorded
    candidate verdicts and the recorded plan verdicts.
    """
    args.repair = True
    return _cmd_diagnose(args)


def _cmd_monitor(args) -> int:
    try:
        session = _session(args)
    except FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.dump_stream:
        from .streaming import ScenarioStreamSource, dump_events

        source = ScenarioStreamSource.for_name(
            args.scenario,
            faults=session.options.faults,
            **_parse_params(args.param),
        )
        count = dump_events(source.events(), args.dump_stream)
        data = {"scenario": args.scenario, "out": args.dump_stream,
                "events": count}
        return _emit(args, data, f"wrote {count} events to {args.dump_stream}")
    try:
        with _sigterm_unwinds():
            monitor = session.monitor(
                capacity=args.capacity,
                lateness=args.lateness,
                max_pending=args.max_pending,
                diagnose_every=args.diagnose_every,
                stream=args.stream,
            )
    except KeyboardInterrupt:
        return _interrupted(args, session)
    except _Terminated:
        return _terminated(args, session)
    summary = monitor.summary().to_dict()
    records = monitor.records
    if args.records_out:
        with open(args.records_out, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
    data = {"scenario": args.scenario, "records": records, "summary": summary}
    lines = []
    for record in records:
        if record["kind"] == "shed":
            lines.append(
                f"SHED {record['incident']} ({record['bad_event']}): "
                f"{record['reason']}"
            )
            continue
        changes = (record.get("report") or {}).get("changes") or []
        verdict = (
            "; ".join(change["change"] for change in changes)
            if changes else f"degraded: {record.get('degraded', 'unknown')}"
        )
        lines.append(
            f"{record['incident']} [{record['confidence']}] "
            f"{record['bad_event']} -> {verdict}"
        )
        for span in record.get("unknown") or ():
            lines.append(f"  UNKNOWN {span}")
    lines.append(
        f"summary: {summary['incidents']} incident(s), "
        f"{summary['diagnoses']} diagnosed, {summary['degraded']} degraded, "
        f"{summary['shed']} shed, {summary['resumed_records']} resumed; "
        f"ingest {summary['ingest']}; peak live {summary['peak_live']}"
    )
    extra_lines: List[str] = []
    _telemetry_output(args, session, data, extra_lines)
    if session.telemetry is not None:
        data["telemetry"] = session.telemetry.snapshot()
    text = "\n".join(lines + extra_lines)
    return _emit(args, data, text)


def _cmd_tree(args) -> int:
    from .provenance.viz import diff_to_dot, tree_to_dot

    session = Session(scenario=args.scenario)
    tree = session.tree(side=args.side)
    if args.dot:
        if args.diff:
            good = tree if args.side == "good" else session.tree(side="good")
            bad = tree if args.side == "bad" else session.tree(side="bad")
            text = diff_to_dot(good, bad, title=args.scenario)
        else:
            text = tree_to_dot(tree, title=f"{args.scenario}:{args.side}")
    elif args.view == "tuple":
        text = tree.tuple_root.render()
    else:
        text = tree.render()
    data = {"scenario": args.scenario, "side": args.side, "size": tree.size()}
    return _emit(args, data, text)


def _cmd_autoref(args) -> int:
    try:
        session = _session(args)
    except FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _sigterm_unwinds():
            result = session.autoref(limit=args.limit)
    except KeyboardInterrupt:
        return _interrupted(args, session)
    except _Terminated:
        return _terminated(args, session)
    data = {
        "scenario": args.scenario,
        "found": result.found,
        "reference": str(result.reference) if result.reference else None,
        "tried": len(result.tried),
        "changes": [c.describe() for c in result.report.changes]
        if result.found
        else [],
    }
    if result.resilience is not None:
        data["resilience"] = result.resilience
    extra_lines: List[str] = []
    _telemetry_output(args, session, data, extra_lines)
    if result.found:
        text = (
            f"discovered reference: {result.reference}\n"
            f"(after trying {len(result.tried)} candidate(s))\n"
            + result.report.summary()
        )
    else:
        text = f"no suitable reference among {len(result.tried)} candidates"
    if extra_lines:
        text += "\n" + "\n".join(extra_lines)
    return _emit(args, data, text)


def _cmd_export(args) -> int:
    session = Session(scenario=args.scenario)
    records = session.export(args.out, side=args.side)
    data = {"scenario": args.scenario, "out": args.out, "records": records}
    return _emit(args, data, f"wrote {records} records to {args.out}")


def _cmd_table1(args) -> int:
    rows = []
    for name in ("SDN1", "SDN2", "SDN3", "SDN4", "MR1-D", "MR2-D", "MR1-I", "MR2-I"):
        scenario = ALL_SCENARIOS[name]()
        row = scenario.table1_row()
        rows.append(
            {
                "scenario": name,
                "good_tree": row["good_tree"],
                "bad_tree": row["bad_tree"],
                "plain_diff": row["plain_diff"],
                "diffprov": "/".join(str(c) for c in row["diffprov_per_round"])
                or str(row["diffprov"]),
            }
        )
    header = f"{'Query':8s} {'Good':>6s} {'Bad':>6s} {'Diff':>6s} {'DiffProv':>9s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['scenario']:8s} {row['good_tree']:>6d} {row['bad_tree']:>6d} "
            f"{row['plain_diff']:>6d} {row['diffprov']:>9s}"
        )
    return _emit(args, rows, "\n".join(lines))


def _cmd_survey(args) -> int:
    stats = survey_module.paper_stats()
    data = {
        "total": stats.total,
        "diagnostic": stats.diagnostic,
        "with_reference": stats.with_reference,
        "reference_fraction": round(stats.reference_fraction, 3),
        "cross_domain": stats.cross_domain,
        "in_domain": stats.in_domain,
        "by_category": stats.by_category,
        "by_strategy": stats.by_strategy,
    }
    text = (
        f"posts: {stats.total}, diagnostic: {stats.diagnostic}, "
        f"with reference: {stats.with_reference} "
        f"({stats.reference_fraction:.1%}), cross-domain: {stats.cross_domain}, "
        f"usable in-domain: {stats.in_domain}\n"
        f"categories: {stats.by_category}\nstrategies: {stats.by_strategy}"
    )
    return _emit(args, data, text)


def _cmd_unsuitable(args) -> int:
    from .scenarios.unsuitable import UnsuitableReferenceStudy

    study = UnsuitableReferenceStudy()
    outcomes = study.run()
    tally = UnsuitableReferenceStudy.tally(outcomes)
    data = {
        "queries": [
            {"scenario": o.scenario, "category": o.category, "message": o.message}
            for o in outcomes
        ],
        "tally": tally,
    }
    lines = [
        f"{o.scenario:7s} {o.category:28s} {o.message[:70]}" for o in outcomes
    ]
    lines.append(f"tally: {tally}")
    return _emit(args, data, "\n".join(lines))


def _cmd_stanford(args) -> int:
    from .scenarios.stanford import StanfordForwardingError

    params = {}
    engine = _engine_spec(args)
    if engine is not None:
        params["engine"] = engine
    scenario = StanfordForwardingError(
        full_scale=args.full_scale, background_packets=args.background,
        **params,
    )
    report = scenario.diagnose()
    good, bad = scenario.trees()
    data = {
        "entries": scenario.config.total_entries(),
        "good_tree": good.size(),
        "bad_tree": bad.size(),
        "plain_diff": scenario.plain_diff_size(),
        "success": report.success,
        "changes": [change.describe() for change in report.changes],
    }
    text = (
        f"configuration: {data['entries']} entries; trees: "
        f"{data['good_tree']}/{data['bad_tree']} vertexes, plain diff "
        f"{data['plain_diff']}\n" + report.summary()
    )
    return _emit(args, data, text)


def _parse_quota_flag(spec: str):
    """One --quota flag: ``TENANT=RATE[:BURST[:CONCURRENT]]``.

    RATE of ``-`` disables rate limiting (concurrency cap only).
    """
    from .service import TenantQuota

    tenant, _, limits = spec.partition("=")
    if not tenant or not limits:
        raise ValueError(
            f"--quota wants TENANT=RATE[:BURST[:CONCURRENT]], got {spec!r}"
        )
    parts = limits.split(":")
    if len(parts) > 3:
        raise ValueError(f"--quota {spec!r} has too many ':' fields")
    rate = None if parts[0] == "-" else float(parts[0])
    burst = float(parts[1]) if len(parts) > 1 else 1.0
    concurrent = int(parts[2]) if len(parts) > 2 else None
    return tenant, TenantQuota(
        rate=rate, burst=burst, max_concurrent=concurrent
    )


def _cmd_serve(args) -> int:
    import asyncio

    from .service import DiagnosisServer

    try:
        quotas = dict(_parse_quota_flag(spec) for spec in args.quota)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def run() -> int:
        server = DiagnosisServer(
            workers=args.workers,
            max_queue=args.max_queue,
            quotas=quotas or None,
            journal_dir=args.journal_dir,
            keep_journals=args.keep_journals,
            default_deadline_s=args.default_deadline_s,
            default_engine=_engine_spec(args),
            drain_timeout_s=args.drain_timeout_s,
            flight_capacity=args.flight_capacity,
            slo_objective=args.slo_objective,
            slo_window_s=args.slo_window_s,
        )
        async with server:
            host, port = await server.serve(args.host, args.port)
            server.install_signal_handlers()
            _install_flight_dump(server)
            # Machine-parseable start line: tests and process managers
            # read the bound port from here (--port 0 picks a free one).
            print(f"diffprov-service listening on {host}:{port}", flush=True)
            if args.metrics_port is not None:
                mhost, mport = await server.serve_metrics(
                    args.host, args.metrics_port
                )
                print(
                    f"diffprov-metrics listening on {mhost}:{mport}",
                    flush=True,
                )
            await server.wait_stopped()
        stats = server.stats()
        admission = stats["admission"]
        summary = (
            f"drained: {admission['admitted_total']} request(s) served, "
            f"shed {sum(admission['shed'].values())}"
        )
        # The per-tenant SLO coda: how each tenant's books closed out.
        for tenant, book in sorted((stats.get("slo") or {}).items()):
            summary += (
                f"\n  {tenant}: offered {book['offered']}, "
                f"ok {book['ok']}, errored {book['errored']}, "
                f"shed {sum(book['shed'].values())}, "
                f"burn {book['error_budget']['burn']}"
            )
        print(summary, file=sys.stderr)
        return 0

    return asyncio.run(run())


def _install_flight_dump(server) -> None:
    """SIGUSR1 dumps the flight recorder to stderr (docs/observability.md)."""
    import asyncio

    if server.ops is None or not hasattr(signal, "SIGUSR1"):
        return
    loop = asyncio.get_running_loop()

    def dump() -> None:
        print(server.ops.flight.to_text(), file=sys.stderr, flush=True)

    with contextlib.suppress(NotImplementedError, RuntimeError):
        loop.add_signal_handler(signal.SIGUSR1, dump)


def _cmd_top(args) -> int:
    import asyncio

    from .observability import render_top
    from .service import SocketServiceClient

    target = f"{args.host}:{args.port}"

    async def run() -> int:
        try:
            async with SocketServiceClient(args.host, args.port) as client:
                while True:
                    stats = (await client.stats()).get("stats", {})
                    frame = render_top(stats, target=target)
                    if args.json:
                        print(json.dumps(stats, indent=2, default=str))
                    elif args.once:
                        print(frame)
                    else:
                        # ANSI clear + home, like watch(1)/top(1).
                        print(f"\x1b[2J\x1b[H{frame}", flush=True)
                    if args.once:
                        return 0
                    await asyncio.sleep(args.interval)
        except (ConnectionError, OSError) as exc:
            print(f"error: cannot reach {target}: {exc}", file=sys.stderr)
            return 1

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
