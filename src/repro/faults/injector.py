"""Seeded, deterministic execution of a :class:`FaultPlan`.

Each injector owns one independent PRNG *stream per fault category*
(drop, duplicate, reorder, delay, provenance loss, fetch loss, link
loss), all derived from ``(plan.seed, purpose, category)``.  Separate
streams mean the schedule of one category is unaffected by the rates of
the others: raising the duplicate rate never shifts which messages get
dropped.

Seeding uses :func:`zlib.crc32` of the purpose/category strings rather
than Python's :func:`hash`, which is randomized per process for strings
and would destroy cross-run determinism.

Every decision is appended to :attr:`schedule` as a plain string, so
"same seed ⇒ same fault schedule" can be asserted byte-for-byte via
:meth:`schedule_bytes`.

The *purpose* string keys the whole family of streams.  Components that
must see the same fault schedule on every replay (the engine's message
layer, the recorder's lossy log) construct a fresh injector with the
same purpose each time — e.g. ``FaultInjector(plan, "engine")`` in both
the live run and every query-time replay — so replays reproduce the
primary run's faults exactly.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List

from .plan import FaultPlan

__all__ = ["FaultInjector", "worker_crash_decision"]


def worker_crash_decision(seed: int, rate: float, index: int) -> bool:
    """Whether the worker handling candidate ``index`` should crash.

    A pure function of ``(seed, rate, index)`` — *not* a stream — because
    the decision must be computable inside a freshly-spawned pool worker
    with no shared injector state, and must come out the same when the
    evaluator re-submits the candidate after healing the pool (only the
    first attempt crashes; see ``repro.replay.parallel``).
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    label = f"worker-crash:{index}".encode("utf-8")
    draw = random.Random(((seed & 0xFFFFFFFF) << 32) | zlib.crc32(label))
    return draw.random() < rate


class FaultInjector:
    """Executes a plan: turns rates and windows into concrete decisions."""

    def __init__(self, plan: FaultPlan, purpose: str = "faults"):
        self.plan = plan
        self.purpose = purpose
        self.schedule: List[str] = []
        self.counters: Dict[str, int] = {
            "messages": 0,
            "dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "delayed": 0,
            "log_events": 0,
            "log_lost": 0,
            "fetch_attempts": 0,
            "fetch_failures": 0,
            "link_lost": 0,
            "crash_lost": 0,
            "snapshots_corrupted": 0,
        }
        self._streams: Dict[str, random.Random] = {}

    def fork(self, purpose: str) -> "FaultInjector":
        """A fresh injector over the same plan with its own streams."""
        return FaultInjector(self.plan, purpose)

    # -- engine messages -----------------------------------------------------

    def message_actions(self, src: str, dst: str) -> List[int]:
        """Fate of one cross-node message, as per-copy delivery delays.

        ``[0]`` deliver now, ``[]`` drop, ``[0, 0]`` duplicate; a
        positive entry delays that copy by that many engine steps.
        Draw order is fixed (drop, duplicate, reorder, delay) and each
        draw comes from its own stream, so schedules are stable.
        """
        plan = self.plan
        self.counters["messages"] += 1
        where = f"{src}->{dst}"
        if self._chance("drop", plan.drop):
            self.counters["dropped"] += 1
            self._note("drop", where)
            return []
        delays = [0]
        if self._chance("duplicate", plan.duplicate):
            self.counters["duplicated"] += 1
            delays.append(0)
            self._note("duplicate", where)
        if self._chance("reorder", plan.reorder):
            # Hold every copy back one step: it overtakes nothing but is
            # overtaken by whatever the current event emits next.
            self.counters["reordered"] += 1
            delays = [d + 1 for d in delays]
            self._note("reorder", where)
        if self._chance("delay", plan.delay):
            self.counters["delayed"] += 1
            delays = [d + plan.delay_steps for d in delays]
            self._note("delay", f"{where} +{plan.delay_steps}")
        return delays

    # -- provenance logging --------------------------------------------------

    def keep_log_event(self, kind: str) -> bool:
        """Whether one recorder event survives lossy logging."""
        self.counters["log_events"] += 1
        if self._chance("prov-loss", self.plan.prov_loss):
            self.counters["log_lost"] += 1
            self._note("log-lost", kind)
            return False
        return True

    # -- distributed fetches -------------------------------------------------

    def node_reachable(self, node: str) -> bool:
        return node not in self.plan.unreachable

    def fetch_ok(self, node: str) -> bool:
        """One fetch attempt against ``node`` (retries call this again)."""
        self.counters["fetch_attempts"] += 1
        if node in self.plan.unreachable:
            self.counters["fetch_failures"] += 1
            self._note("fetch-unreachable", node)
            return False
        if self._chance("fetch-loss", self.plan.fetch_loss):
            self.counters["fetch_failures"] += 1
            self._note("fetch-timeout", node)
            return False
        return True

    # -- emulated network ----------------------------------------------------

    def link_up(self, switch: str, port: int, time: int) -> bool:
        """Whether the (switch, port) link works at trace time ``time``."""
        for flap_switch, flap_port, start, end in self.plan.flaps:
            if flap_switch != switch:
                continue
            if flap_port is not None and flap_port != port:
                continue
            if start <= time <= end:
                self.counters["link_lost"] += 1
                self._note("link-flap", f"{switch}:{port}@{time}")
                return False
        if self._chance("link-loss", self.plan.link_loss):
            self.counters["link_lost"] += 1
            self._note("link-loss", f"{switch}:{port}@{time}")
            return False
        return True

    def switch_alive(self, switch: str, time: int) -> bool:
        """Whether ``switch`` is up (not in a crash window) at ``time``."""
        for crash_switch, start, end in self.plan.crashes:
            if crash_switch == switch and start <= time <= end:
                self.counters["crash_lost"] += 1
                self._note("crash", f"{switch}@{time}")
                return False
        return True

    # -- diagnoser-host faults -----------------------------------------------

    def corrupt_snapshot(self) -> bool:
        """Whether to corrupt the replay snapshot being stored now.

        Stream-based like the network faults: same seed ⇒ the same
        cache stores get corrupted, so corrupt-miss counters are
        deterministic across runs.
        """
        if self._chance("snapshot-corrupt", self.plan.snapshot_corrupt):
            self.counters["snapshots_corrupted"] += 1
            self._note("snapshot-corrupt", f"#{self.counters['snapshots_corrupted']}")
            return True
        return False

    def crash_worker(self, index: int) -> bool:
        """Whether the first attempt at candidate ``index`` crashes its
        worker (delegates to :func:`worker_crash_decision`)."""
        return worker_crash_decision(self.plan.seed, self.plan.worker_crash, index)

    # -- determinism surface -------------------------------------------------

    def schedule_bytes(self) -> bytes:
        """The full decision schedule, byte-comparable across runs."""
        return "\n".join(self.schedule).encode("utf-8")

    def stats(self) -> Dict[str, int]:
        return dict(self.counters)

    def fold_into(self, telemetry, prefix: str = None) -> None:
        """Fold the injected-event counters into a metrics registry.

        Counter names become ``faults.<purpose>.<counter>`` (zero
        entries are skipped), so a diagnosis run's snapshot shows
        exactly which faults fired in each stream.  Deterministic:
        the counters themselves are driven by the seeded schedule.
        """
        if telemetry is None:
            return
        telemetry.fold_counters(
            prefix if prefix is not None else f"faults.{self.purpose}",
            self.counters,
        )

    # -- internals -----------------------------------------------------------

    def _stream(self, category: str) -> random.Random:
        stream = self._streams.get(category)
        if stream is None:
            label = f"{self.purpose}:{category}".encode("utf-8")
            stream = random.Random(
                ((self.plan.seed & 0xFFFFFFFF) << 32) | zlib.crc32(label)
            )
            self._streams[category] = stream
        return stream

    def _chance(self, category: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._stream(category).random() < rate

    def _note(self, action: str, detail: str) -> None:
        self.schedule.append(f"{len(self.schedule)} {action} {detail}")
