"""Declarative fault plans.

A :class:`FaultPlan` is an immutable description of *what* can go wrong
and *how often*; it carries no randomness of its own.  The executable
side — seeded streams, per-decision bookkeeping — lives in
:class:`repro.faults.injector.FaultInjector`.

Plans are usually written as a compact spec string (the ``--faults``
CLI flag)::

    drop=0.1,dup=0.05,loss=0.1,seed=7
    fetch-loss=0.2,retries=3,unreachable=s3|s4
    flap=s2:1:10:40,crash=s3:5:60

Grammar: a comma-separated list of ``key=value`` tokens.  Rates are
floats in ``[0, 1]``; ``flap`` and ``crash`` may repeat and accumulate
windows.  See ``docs/faults.md`` for the full reference.
"""

from __future__ import annotations

from typing import Optional, Tuple as PyTuple

from ..errors import FaultSpecError

__all__ = ["FaultPlan"]

# spec key -> (attribute, parser); rate keys share a range check.
# worker-crash and snapshot-corrupt are *host* faults: they hit the
# diagnoser's own pool workers and snapshot cache, not the diagnosed
# network (docs/resilience.md).  The event-* and clock-skew rates are
# *stream* faults: they perturb the transport between a monitored
# network and the streaming monitor's ingestion front-end, never the
# diagnosed replays themselves (docs/streaming.md).
_RATE_KEYS = {
    "drop": "drop",
    "dup": "duplicate",
    "reorder": "reorder",
    "delay": "delay",
    "loss": "prov_loss",
    "fetch-loss": "fetch_loss",
    "link-loss": "link_loss",
    "worker-crash": "worker_crash",
    "snapshot-corrupt": "snapshot_corrupt",
    "event-drop": "event_drop",
    "event-dup": "event_dup",
    "event-reorder": "event_reorder",
    "clock-skew": "clock_skew",
}
_INT_KEYS = {
    "seed": "seed",
    "delay-steps": "delay_steps",
    "retries": "max_retries",
    "timeout": "timeout_steps",
}


class FaultPlan:
    """What faults to inject, at which rates, under which seed.

    All-defaults (``FaultPlan()``) is the *zero plan*: every decision
    method of an injector built from it is a guaranteed no-op, so
    installing it must not change behaviour.
    """

    __slots__ = (
        "seed",
        "drop",
        "duplicate",
        "reorder",
        "delay",
        "delay_steps",
        "prov_loss",
        "fetch_loss",
        "link_loss",
        "max_retries",
        "timeout_steps",
        "unreachable",
        "flaps",
        "crashes",
        "worker_crash",
        "snapshot_corrupt",
        "event_drop",
        "event_dup",
        "event_reorder",
        "clock_skew",
    )

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay: float = 0.0,
        delay_steps: int = 2,
        prov_loss: float = 0.0,
        fetch_loss: float = 0.0,
        link_loss: float = 0.0,
        max_retries: int = 2,
        timeout_steps: int = 1,
        unreachable: PyTuple[str, ...] = (),
        flaps: PyTuple[PyTuple[str, Optional[int], int, int], ...] = (),
        crashes: PyTuple[PyTuple[str, int, int], ...] = (),
        worker_crash: float = 0.0,
        snapshot_corrupt: float = 0.0,
        event_drop: float = 0.0,
        event_dup: float = 0.0,
        event_reorder: float = 0.0,
        clock_skew: float = 0.0,
    ):
        for name, value in (
            ("drop", drop),
            ("duplicate", duplicate),
            ("reorder", reorder),
            ("delay", delay),
            ("prov_loss", prov_loss),
            ("fetch_loss", fetch_loss),
            ("link_loss", link_loss),
            ("worker_crash", worker_crash),
            ("snapshot_corrupt", snapshot_corrupt),
            ("event_drop", event_drop),
            ("event_dup", event_dup),
            ("event_reorder", event_reorder),
            ("clock_skew", clock_skew),
        ):
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(f"rate {name}={value} outside [0, 1]")
        if delay_steps < 1:
            raise FaultSpecError(f"delay_steps must be >= 1, got {delay_steps}")
        if max_retries < 0:
            raise FaultSpecError(f"max_retries must be >= 0, got {max_retries}")
        if timeout_steps < 1:
            raise FaultSpecError(
                f"timeout_steps must be >= 1, got {timeout_steps}"
            )
        self.seed = int(seed)
        self.drop = float(drop)
        self.duplicate = float(duplicate)
        self.reorder = float(reorder)
        self.delay = float(delay)
        self.delay_steps = int(delay_steps)
        self.prov_loss = float(prov_loss)
        self.fetch_loss = float(fetch_loss)
        self.link_loss = float(link_loss)
        self.max_retries = int(max_retries)
        self.timeout_steps = int(timeout_steps)
        self.unreachable = tuple(sorted(unreachable))
        self.flaps = tuple(sorted(flaps, key=_flap_key))
        self.crashes = tuple(sorted(crashes))
        self.worker_crash = float(worker_crash)
        self.snapshot_corrupt = float(snapshot_corrupt)
        self.event_drop = float(event_drop)
        self.event_dup = float(event_dup)
        self.event_reorder = float(event_reorder)
        self.clock_skew = float(clock_skew)

    # -- spec parsing --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a comma-separated ``key=value`` spec into a plan."""
        kwargs: dict = {}
        flaps = []
        crashes = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise FaultSpecError("expected key=value", token=token)
            if key in _RATE_KEYS:
                kwargs[_RATE_KEYS[key]] = _parse_float(token, value)
            elif key in _INT_KEYS:
                kwargs[_INT_KEYS[key]] = _parse_int(token, value)
            elif key == "unreachable":
                nodes = tuple(n for n in value.split("|") if n)
                if not nodes:
                    raise FaultSpecError("no nodes listed", token=token)
                kwargs["unreachable"] = kwargs.get("unreachable", ()) + nodes
            elif key == "flap":
                flaps.append(_parse_flap(token, value))
            elif key == "crash":
                crashes.append(_parse_crash(token, value))
            else:
                raise FaultSpecError(f"unknown key {key!r}", token=token)
        if flaps:
            kwargs["flaps"] = tuple(flaps)
        if crashes:
            kwargs["crashes"] = tuple(crashes)
        return cls(**kwargs)

    # -- introspection -------------------------------------------------------

    def is_zero(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.host_only()
            and self.worker_crash == 0.0
            and self.snapshot_corrupt == 0.0
            and not self.has_stream_faults()
        )

    def has_stream_faults(self) -> bool:
        """True when the plan perturbs a monitored event stream.

        Stream faults (event drop/dup/reorder, clock skew) act on the
        transport between the monitored network and the streaming
        monitor's ingestion front-end (docs/streaming.md).  Like host
        faults they never touch the diagnosed replays, so they do not
        affect :meth:`host_only`.
        """
        return (
            self.event_drop > 0.0
            or self.event_dup > 0.0
            or self.event_reorder > 0.0
            or self.clock_skew > 0.0
        )

    def host_only(self) -> bool:
        """True when only the diagnoser host can be faulted.

        Worker crashes and snapshot corruption never touch the
        diagnosed network: replays, divergence checks, and therefore
        the report are unaffected (the evaluator retries crashed
        candidates, the cache re-derives corrupt snapshots).  Callers
        that gate pure-speed-up machinery on "no network faults" — the
        parallel minimality pass — use this instead of :meth:`is_zero`.
        """
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.delay == 0.0
            and self.prov_loss == 0.0
            and self.fetch_loss == 0.0
            and self.link_loss == 0.0
            and not self.unreachable
            and not self.flaps
            and not self.crashes
        )

    def describe(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        parts = [f"seed={self.seed}"]
        for key, attr in _RATE_KEYS.items():
            value = getattr(self, attr)
            if value:
                parts.append(f"{key}={value:g}")
        if self.delay:
            parts.append(f"delay-steps={self.delay_steps}")
        if self.fetch_loss or self.unreachable:
            parts.append(f"retries={self.max_retries}")
            parts.append(f"timeout={self.timeout_steps}")
        if self.unreachable:
            parts.append("unreachable=" + "|".join(self.unreachable))
        for switch, port, start, end in self.flaps:
            port_text = "*" if port is None else str(port)
            parts.append(f"flap={switch}:{port_text}:{start}:{end}")
        for switch, start, end in self.crashes:
            parts.append(f"crash={switch}:{start}:{end}")
        return ",".join(parts)

    def __repr__(self):
        return f"FaultPlan({self.describe()})"

    def __eq__(self, other):
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in self.__slots__
        )

    def __hash__(self):
        return hash(tuple(getattr(self, slot) for slot in self.__slots__))


def _flap_key(flap):
    switch, port, start, end = flap
    return (switch, -1 if port is None else port, start, end)


def _parse_float(token: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultSpecError(f"{value!r} is not a number", token=token)


def _parse_int(token: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise FaultSpecError(f"{value!r} is not an integer", token=token)


def _parse_flap(token: str, value: str):
    """``switch:port:start:end`` — port ``*`` means every port."""
    fields = value.split(":")
    if len(fields) != 4:
        raise FaultSpecError("expected switch:port:start:end", token=token)
    switch, port_text, start_text, end_text = fields
    port = None if port_text == "*" else _parse_int(token, port_text)
    start = _parse_int(token, start_text)
    end = _parse_int(token, end_text)
    if start > end:
        raise FaultSpecError(f"window {start}..{end} is empty", token=token)
    return (switch, port, start, end)


def _parse_crash(token: str, value: str):
    """``switch:start:end`` — the switch is down during [start, end]."""
    fields = value.split(":")
    if len(fields) != 3:
        raise FaultSpecError("expected switch:start:end", token=token)
    switch, start_text, end_text = fields
    start = _parse_int(token, start_text)
    end = _parse_int(token, end_text)
    if start > end:
        raise FaultSpecError(f"window {start}..{end} is empty", token=token)
    return (switch, start, end)
