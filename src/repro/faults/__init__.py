"""Deterministic fault injection for the distributed provenance stack.

Two halves:

- :class:`FaultPlan` — a declarative, immutable description of fault
  rates and windows, parseable from a compact spec string.
- :class:`FaultInjector` — a seeded executor of a plan; every decision
  it makes is recorded, so the same ``(plan, purpose)`` pair replays
  the identical fault schedule byte-for-byte.

Hook points live in the layers themselves: the engine's cross-node
message delivery, the provenance recorder's event log, the emulated
network's links/switches, and the partitioned provenance store's remote
fetches.  A ``None`` injector (or a zero plan) is a guaranteed no-op.
"""

from .injector import FaultInjector, worker_crash_decision
from .plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan", "worker_crash_decision"]
