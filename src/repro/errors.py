"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  The DiffProv
algorithm additionally uses a small family of *diagnostic failures*
(Section 4.7 of the paper): these are expected outcomes that carry
structured information the operator can act on, rather than bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParseError(ReproError):
    """An NDlog program or policy could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SchemaError(ReproError):
    """A tuple does not match its table schema."""


class EvaluationError(ReproError):
    """A rule body could not be evaluated (bad types, missing builtin)."""


class StepLimitExceeded(ReproError):
    """The engine exceeded its step budget.

    Raised only when a budget was set — diagnostic replays bound their
    work by a multiple of the primary run, so a candidate change that
    makes the replayed system diverge (e.g. a forwarding loop) surfaces
    as this typed error instead of a hang.
    """


class NonInvertibleError(ReproError):
    """An expression could not be inverted for taint propagation.

    Carries the *attempted change* (Section 4.7): DiffProv surfaces the
    expression it failed to invert as a diagnostic clue.
    """

    def __init__(self, message: str, attempted=None):
        super().__init__(message)
        self.attempted = attempted


class DiagnosisFailure(ReproError):
    """Base class for expected DiffProv failures (Section 4.7)."""


class SeedTypeMismatch(DiagnosisFailure):
    """The seeds of the good and bad trees have different types.

    The two trees are not comparable; the operator must pick a more
    suitable reference event.
    """

    def __init__(self, good_seed, bad_seed):
        self.good_seed = good_seed
        self.bad_seed = bad_seed
        super().__init__(
            f"seed type mismatch: good seed is {good_seed.table!r}, "
            f"bad seed is {bad_seed.table!r}; the reference event is not "
            f"comparable with the event of interest"
        )


class ImmutableChangeRequired(DiagnosisFailure):
    """Aligning the trees would require changing an immutable tuple.

    There is no valid solution, but the required change is surfaced so
    the operator can pick a better reference (Section 4.7).
    """

    def __init__(self, tup, reason: str = ""):
        self.tuple = tup
        msg = f"aligning the trees requires changing immutable tuple {tup}"
        if reason:
            msg += f" ({reason})"
        super().__init__(msg)


class ReplayDivergence(ReproError):
    """A replay produced a different event sequence than the log.

    Indicates non-determinism in the primary system (Section 4.9); the
    point of divergence is suggested as a potential race condition.
    """

    def __init__(self, message: str, at=None):
        self.at = at
        super().__init__(message)


class FaultError(ReproError):
    """Base class for errors raised by the fault-injection layer."""


class FaultSpecError(FaultError):
    """A ``--faults`` specification could not be parsed."""

    def __init__(self, message: str, token: str | None = None):
        self.token = token
        if token is not None:
            message = f"bad fault spec token {token!r}: {message}"
        super().__init__(message)


class NodeUnreachableError(FaultError):
    """A remote node stayed unreachable after bounded retries.

    Carries the node and (when raised from a distributed query) the
    accumulated :class:`~repro.provenance.distributed.DistributedQueryStats`
    so the operator can see how many retries/timeouts were spent.
    """

    def __init__(self, node: str, message: str = "", stats=None):
        self.node = node
        self.stats = stats
        super().__init__(
            message or f"node {node!r} is unreachable (retries exhausted)"
        )


class IntegrityError(ReproError):
    """A persisted artifact failed its length/digest check.

    Raised by :mod:`repro.resilience.integrity` when a framed payload
    (a cached replay snapshot, a dumped event log) is truncated or
    corrupt.  The replay cache converts this into a recorded miss; log
    loading surfaces it, since a corrupt log has no safe fallback.
    """


class JournalError(ReproError):
    """A diagnosis journal cannot be resumed from.

    Raised when the journal header's schema version or diagnosis
    fingerprint does not match the resuming run — resuming against the
    wrong scenario or options would silently corrupt the report.  A
    merely *truncated* journal (crash mid-write) is not an error: the
    readable prefix is used and the torn tail discarded.
    """


class DeadlineExceeded(ReproError):
    """The end-to-end diagnosis deadline expired.

    Carries the phase that noticed the expiry.  DiffProv catches this
    and degrades to a partial report with the best-so-far candidates
    instead of crashing (docs/resilience.md).
    """

    def __init__(self, message: str, phase: str = ""):
        self.phase = phase
        super().__init__(message)


class ServiceError(ReproError):
    """Base class for errors raised by the diagnosis service
    (:mod:`repro.service`)."""


class ProtocolError(ServiceError):
    """A service request could not be parsed or validated.

    Raised by :mod:`repro.service.protocol` for malformed NDJSON lines,
    unknown request kinds, or out-of-range field values.  The server
    answers with a ``status: "error"`` response instead of dropping the
    connection, so one bad client line never poisons the stream.
    """


class Overloaded(ServiceError):
    """The server refused to admit a request (docs/service.md).

    A *typed* rejection, not a failure: the work was never started.
    Carries the shed ``reason`` (``queue-full``, ``quota``,
    ``concurrency``, ``draining``) and a ``retry_after_s`` hint — the
    server's estimate of when a resubmission is likely to be admitted.
    """

    def __init__(self, message: str, reason: str = "overloaded",
                 retry_after_s: float = 1.0):
        self.reason = reason
        self.retry_after_s = max(0.0, float(retry_after_s))
        super().__init__(message)


class DegradedResultWarning(UserWarning):
    """A result was produced under faults and carries reduced confidence.

    Emitted (never raised) when a provenance query or diagnosis had to
    proceed with missing subtrees — lost log events or unreachable
    partitions.  The result is still usable, but each conclusion is
    annotated with a confidence level instead of being definitive.
    """
