"""IPv4 addresses and prefixes.

These are deliberately small, int-backed, hashable value types: datalog
tuples embed them directly, and the engine compares millions of them
during trace replay, so they avoid the overhead and mutability pitfalls
of richer representations.
"""

from __future__ import annotations

from functools import total_ordering

from .errors import SchemaError

__all__ = ["IPv4Address", "Prefix", "ip", "prefix"]


@total_ordering
class IPv4Address:
    """An IPv4 address backed by a 32-bit integer."""

    __slots__ = ("_value",)

    def __init__(self, value):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise SchemaError(f"IPv4 address out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted(value)
        else:
            raise SchemaError(f"cannot build IPv4Address from {value!r}")

    @property
    def value(self) -> int:
        return self._value

    def octets(self) -> tuple:
        v = self._value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def last_octet(self) -> int:
        return self._value & 0xFF

    def in_prefix(self, pfx: "Prefix") -> bool:
        return pfx.contains(self)

    def __eq__(self, other):
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other):
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self):
        return hash(("IPv4Address", self._value))

    def __str__(self):
        return ".".join(str(o) for o in self.octets())

    def __repr__(self):
        return f"IPv4Address('{self}')"


@total_ordering
class Prefix:
    """An IPv4 prefix (network address + mask length)."""

    __slots__ = ("_network", "_length")

    def __init__(self, network, length: int | None = None):
        if isinstance(network, Prefix) and length is None:
            self._network = network._network
            self._length = network._length
            return
        if isinstance(network, str) and length is None:
            if "/" not in network:
                raise SchemaError(f"prefix needs a /length: {network!r}")
            addr, _, ln = network.partition("/")
            network, length = IPv4Address(addr), int(ln)
        if not isinstance(network, IPv4Address):
            network = IPv4Address(network)
        if length is None or not 0 <= int(length) <= 32:
            raise SchemaError(f"bad prefix length: {length!r}")
        length = int(length)
        self._network = IPv4Address(network.value & _mask(length))
        self._length = length

    @property
    def network(self) -> IPv4Address:
        return self._network

    @property
    def length(self) -> int:
        return self._length

    def contains(self, addr) -> bool:
        addr = IPv4Address(addr)
        return (addr.value & _mask(self._length)) == self._network.value

    def overlaps(self, other: "Prefix") -> bool:
        shorter = self if self._length <= other._length else other
        longer = other if shorter is self else self
        return shorter.contains(longer.network)

    def subnets(self):
        """Split into the two /(length+1) halves."""
        if self._length >= 32:
            raise SchemaError("cannot split a /32")
        half = 1 << (31 - self._length)
        return (
            Prefix(self._network, self._length + 1),
            Prefix(IPv4Address(self._network.value | half), self._length + 1),
        )

    def host(self, index: int) -> IPv4Address:
        """The index-th host address inside this prefix."""
        size = 1 << (32 - self._length)
        if not 0 <= index < size:
            raise SchemaError(f"host index {index} outside /{self._length}")
        return IPv4Address(self._network.value + index)

    def __eq__(self, other):
        if isinstance(other, Prefix):
            return (self._network, self._length) == (other._network, other._length)
        return NotImplemented

    def __lt__(self, other):
        if isinstance(other, Prefix):
            return (self._network, self._length) < (other._network, other._length)
        return NotImplemented

    def __hash__(self):
        return hash(("Prefix", self._network, self._length))

    def __str__(self):
        return f"{self._network}/{self._length}"

    def __repr__(self):
        return f"Prefix('{self}')"


def ip(value) -> IPv4Address:
    """Shorthand constructor: ``ip('10.0.0.1')``."""
    return IPv4Address(value)


def prefix(value, length: int | None = None) -> Prefix:
    """Shorthand constructor: ``prefix('10.0.0.0/8')``."""
    return Prefix(value, length)


def _parse_dotted(text: str) -> int:
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise SchemaError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise SchemaError(f"malformed IPv4 address: {text!r}") from None
        if not 0 <= octet <= 255:
            raise SchemaError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _mask(length: int) -> int:
    return 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
