"""The stable programmatic surface of the package: :class:`Session`.

Everything an operator does with the command-line debugger — diagnose,
search for a reference, inspect trees, export provenance — is available
as one object whose constructor takes the same knobs the CLI exposes as
flags.  The lower layers (:class:`repro.DiffProv`, executions,
recorders) remain importable for programs that need them, but the
facade is the documented entry point and the one the examples and the
``diffprov`` command are written against (docs/api.md).

Two construction modes:

- **Scenario mode** — name one of the built-in diagnostic scenarios::

      from repro.api import Session

      session = Session(scenario="SDN1", minimize=True, workers=4)
      print(session.diagnose().summary())

- **Explicit mode** — bring your own program, executions and events::

      session = Session(
          program=program,
          good=execution, bad=execution,
          good_event=good, bad_event=bad,
      )
      report = session.diagnose()

The knobs mirror :class:`repro.DiffProvOptions`: ``workers`` > 1 fans
candidate replays out over a process pool and ``replay_cache=False``
disables the baseline snapshot cache; both leave the report
byte-identical (docs/performance.md).
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional

from .core.autoref import AutoReferenceResult, auto_diagnose
from .core.diffprov import DiffProv, DiffProvOptions
from .core.report import DiagnosisReport
from .datalog.config import EngineConfig
from .errors import ReproError
from .faults import FaultPlan
from .observability import Telemetry
from .provenance.query import provenance_query
from .provenance.tree import ProvenanceTree
from .resilience import DiagnosisJournal

__all__ = ["Session"]


class Session:
    """One diagnostic session: a program, two executions, two events.

    Construct with ``scenario="SDN1"`` (any key of
    :data:`repro.scenarios.ALL_SCENARIOS`, case-insensitive) or with
    the explicit ``program``/``good``/``bad``/``good_event``/
    ``bad_event`` quintet.  All other arguments are tuning knobs:

    ``faults``
        A :class:`repro.FaultPlan` or a spec string such as
        ``"loss=0.1,seed=7"`` (docs/faults.md).
    ``telemetry``
        ``True`` to collect metrics and spans into a fresh
        :class:`repro.Telemetry` (exposed as ``session.telemetry``),
        or an existing instance to share one across sessions.
    ``trace``
        A :class:`repro.observability.TraceContext` (or its ``to_dict``
        form) positioning this session inside a cross-process trace;
        the tracer stamps root spans with the trace id and span
        lineage so a service worker's spans stitch under the server's
        dispatch span (docs/observability.md).  Ignored without
        ``telemetry``.
    ``engine``
        An :class:`repro.EngineConfig`, a backend name string
        (``"compiled"``, ``"indexed"``, ``"reference"``), or a mapping
        with ``backend``/``provenance`` keys.  Selects the evaluation
        backend for both executions; every mode produces byte-identical
        reports (docs/performance.md).  ``None`` keeps each execution's
        own config (the compiled default).
    ``workers``
        Process-pool width for candidate replays; 1 = serial.
    ``replay_cache``
        Snapshot-cache baseline engine states between replays.
    ``max_rounds``, ``minimize``, ``taint``
        As in :class:`repro.DiffProvOptions` (``taint`` maps to
        ``enable_taint``).
    ``journal``, ``resume``
        Path of the write-ahead diagnosis journal, and whether to
        resume from an existing one; candidate verdicts recorded by a
        previous (possibly killed) run are skipped and the resumed
        report is byte-identical (docs/resilience.md).
    ``cache``
        An existing :class:`repro.replay.cache.ReplayCache` to attach
        to the session's executions, so baseline snapshots stay warm
        *across* sessions — the diagnosis-service workers keep one per
        process this way (docs/service.md).  Snapshot keys embed the
        log fingerprint, so a single cache safely serves many
        scenarios.  Ignored when ``replay_cache=False``.
    ``deadline_s``
        End-to-end wall-clock budget for each diagnose/autoref call.
    ``resilience``
        A :class:`repro.resilience.ResiliencePolicy` tuning the
        self-healing candidate evaluator.
    ``repair``
        Run the rollback planner (:mod:`repro.repair`) after every
        successful diagnosis and attach ranked, replay-verified fix
        plans as ``report.repair`` (docs/repair.md).  Equivalent to
        calling :meth:`repair` instead of :meth:`diagnose`.
    ``scenario_params``
        Extra keyword arguments forwarded to the scenario class in
        scenario mode, e.g. ``scenario_params={"background_packets":
        120}`` to rescale a workload.

    Scenario construction is lazy: the executions are built on first
    use, so creating a Session is cheap.

    Sessions hold real resources once built (an open journal file
    during calls, megabytes of cached snapshots): :meth:`close`
    releases them, and the class is a context manager so ``with
    Session(...) as s:`` does it for you.
    """

    def __init__(
        self,
        scenario: Optional[str] = None,
        *,
        program=None,
        good=None,
        bad=None,
        good_event=None,
        bad_event=None,
        good_time: Optional[int] = None,
        bad_time: Optional[int] = None,
        faults=None,
        telemetry=None,
        trace=None,
        engine=None,
        workers: int = 1,
        replay_cache: bool = True,
        max_rounds: int = 10,
        minimize: bool = False,
        taint: bool = True,
        journal: Optional[str] = None,
        resume: bool = False,
        cache=None,
        deadline_s: Optional[float] = None,
        resilience=None,
        repair: bool = False,
        scenario_params: Optional[Dict] = None,
    ):
        if scenario is not None and program is not None:
            raise ReproError(
                "pass either scenario=... or the explicit "
                "program/good/bad/good_event/bad_event set, not both"
            )
        if scenario is None:
            missing = [
                name
                for name, value in (
                    ("program", program),
                    ("good", good),
                    ("bad", bad),
                    ("good_event", good_event),
                    ("bad_event", bad_event),
                )
                if value is None
            ]
            if missing:
                raise ReproError(
                    "explicit sessions need program, good, bad, "
                    f"good_event and bad_event (missing: {', '.join(missing)})"
                )
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        if telemetry is True:
            telemetry = Telemetry()
        self.engine_config = (
            None if engine is None else EngineConfig.coerce(engine)
        )
        self.scenario_name = scenario.upper() if scenario else None
        self.telemetry = telemetry or None
        if trace is not None and self.telemetry is not None:
            from .observability import TraceContext

            if not isinstance(trace, TraceContext):
                trace = TraceContext.from_dict(dict(trace))
            self.telemetry.tracer.context = trace
        self.options = DiffProvOptions(
            max_rounds=max_rounds,
            enable_taint=taint,
            minimize=minimize,
            faults=faults,
            telemetry=self.telemetry,
            workers=workers,
            replay_cache=replay_cache,
            deadline=deadline_s,
            resilience=resilience,
            repair=repair,
        )
        self.journal_path = journal
        self._resume = bool(resume)
        # The most recently opened DiagnosisJournal (kept after close so
        # the CLI's Ctrl-C handler can print journal.progress()).
        self.journal = None
        self._scenario_params = dict(scenario_params or {})
        self._scenario = None
        self.program = program
        self.good = good
        self.bad = bad
        self.good_event = good_event
        self.bad_event = bad_event
        self.good_time = good_time
        self.bad_time = bad_time
        self.cache = cache if replay_cache else None
        self._closed = False
        if self.scenario_name is None:
            self._built = True
            self._attach_cache()
            self._apply_engine()
        else:
            from .scenarios import ALL_SCENARIOS

            if self.scenario_name not in ALL_SCENARIOS:
                raise ReproError(
                    f"unknown scenario {scenario!r} "
                    f"(choose from {', '.join(sorted(ALL_SCENARIOS))})"
                )
            self._built = False

    # -- lifecycle -----------------------------------------------------------

    def setup(self) -> "Session":
        """Build the scenario's executions and events.

        Idempotent, and implied by every query method (``diagnose``,
        ``autoref``, ``tree``, ``export``), so calling it yourself is
        optional — constructing a Session is deliberately cheap and
        the expensive scenario build happens on first use.  Returns
        ``self`` for chaining.
        """
        if self._closed:
            raise ReproError("this Session is closed")
        if self._built:
            return self
        from .scenarios import ALL_SCENARIOS

        params = dict(self._scenario_params)
        plan = self.options.faults
        if plan is not None and "faults" not in params:
            params["faults"] = plan
        if self.engine_config is not None and "engine" not in params:
            params["engine"] = self.engine_config
        scenario = ALL_SCENARIOS[self.scenario_name](**params).setup()
        self._scenario = scenario
        self.program = scenario.program
        self.good = scenario.good_execution
        self.bad = scenario.bad_execution
        self.good_event = scenario.good_event
        self.bad_event = scenario.bad_event
        self.good_time = scenario.good_time
        self.bad_time = scenario.bad_time
        if self.options.faults is None:
            # Scenario classes may carry their own plan (e.g. SDN1-F).
            self.options.faults = scenario.fault_plan
        self._built = True
        self._attach_cache()
        self._apply_engine()
        return self

    def _apply_engine(self) -> None:
        """Assign the session's EngineConfig to both executions.

        Backends produce byte-identical results, so this only changes
        replay cost; scenario mode already threads the config through
        the scenario's ``engine`` param, making this a no-op there.
        """
        if self.engine_config is None:
            return
        for execution in (self.good, self.bad):
            if (
                hasattr(execution, "engine_config")
                and execution.engine_config != self.engine_config
            ):
                execution.engine_config = self.engine_config

    def _attach_cache(self) -> None:
        """Hand the caller-supplied ReplayCache to both executions.

        ``_replay_cache_scope`` (repro.core.diffprov) reuses a cache it
        finds already attached instead of building a fresh one, which
        is exactly how warmth survives across diagnose() calls and
        across Sessions sharing one cache.
        """
        if self.cache is None:
            return
        for execution in (self.good, self.bad):
            if (
                hasattr(execution, "replay_cache")
                and execution.replay_cache is None
            ):
                execution.replay_cache = self.cache

    def close(self) -> None:
        """Release the session's resources; idempotent.

        Closes (and flushes) any open journal, detaches the shared
        cache from the executions, and drops the scenario and
        execution references so their logs and provenance graphs can
        be collected.  Further queries raise
        :class:`~repro.errors.ReproError`; the ``journal`` attribute
        stays readable so crash handlers can still print
        ``journal.progress()``.
        """
        if self._closed:
            return
        self._closed = True
        if self.journal is not None and not self.journal.closed:
            self.journal.close()
        for execution in (self.good, self.bad):
            if (
                self.cache is not None
                and getattr(execution, "replay_cache", None) is self.cache
            ):
                execution.replay_cache = None
        self._scenario = None
        self.program = None
        self.good = None
        self.bad = None
        self.good_event = None
        self.bad_event = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def scenario(self):
        """The underlying Scenario object (scenario mode only)."""
        self.setup()
        return self._scenario

    # -- diagnostics ---------------------------------------------------------

    def diagnose(
        self,
        resume_from: Optional[str] = None,
        repair: Optional[bool] = None,
    ) -> DiagnosisReport:
        """Run DiffProv on the session's good/bad events.

        ``resume_from`` names an existing journal file to resume; it
        overrides the constructor's ``journal``/``resume`` pair for
        this one call.  Resumed runs skip candidate replays whose
        verdicts the journal already holds and still produce a
        ``canonical_json()`` byte-identical to an uninterrupted run.

        ``repair`` overrides the constructor's ``repair`` knob for this
        one call: ``True`` attaches ranked rollback plans as
        ``report.repair`` (docs/repair.md).
        """
        self.setup()
        saved_repair = self.options.repair
        if repair is not None:
            # Set before the journal scope opens: the fingerprint
            # records the effective option, and repair verdicts only
            # resume into a repair-enabled run.
            self.options.repair = bool(repair)
        try:
            debugger = DiffProv(self.program, self.options)
            with self._journal_scope("diagnose", resume_from):
                return debugger.diagnose(
                    self.good,
                    self.bad,
                    self.good_event,
                    self.bad_event,
                    self.good_time,
                    self.bad_time,
                )
        finally:
            self.options.repair = saved_repair

    def repair(self, resume_from: Optional[str] = None) -> DiagnosisReport:
        """Diagnose, then plan and verify rollback fixes (docs/repair.md).

        Shorthand for ``diagnose(repair=True)``: the returned report's
        ``repair`` section carries the ranked, replay-verified plans
        (and the rejected candidates with their rejection reasons).
        """
        return self.diagnose(resume_from=resume_from, repair=True)

    def autoref(
        self, limit: int = 10, resume_from: Optional[str] = None
    ) -> AutoReferenceResult:
        """Diagnose the bad event with a *discovered* reference.

        Proposes up to ``limit`` candidate references from the good
        execution's provenance graph and returns the first successful
        diagnosis with a non-empty Δ (Section 4.9).  Honours the
        session's ``workers`` setting, the journal knobs (rejected
        candidates are skipped on resume) and the deadline.
        """
        self.setup()
        with self._journal_scope("autoref", resume_from, limit=limit):
            return auto_diagnose(
                self.program,
                self.good,
                self.bad,
                self.bad_event,
                options=self.options,
                limit=limit,
            )

    def monitor(
        self,
        *,
        capacity: int = 24,
        lateness: int = 8,
        max_pending: int = 8,
        diagnose_every: int = 1,
        reference_limit: int = 5,
        stream: Optional[str] = None,
        resume_from: Optional[str] = None,
    ):
        """Watch the session's event stream; diagnose detections online.

        The streaming counterpart of :meth:`diagnose`
        (docs/streaming.md): the scenario's recorded stream — or an
        NDJSON file via ``stream=`` — is ingested through the
        fault-tolerant front-end, kept in a bounded sliding window with
        provenance GC, scored per probe, and every detected incident is
        diagnosed with an auto-selected reference.  Returns the
        finished :class:`repro.streaming.StreamMonitor`, whose
        ``records`` are the emitted diagnosis/shed records and whose
        ``summary()`` rolls up what happened.

        The session's knobs carry over: ``faults`` supplies the
        stream-fault plan (``event-drop``/``event-dup``/
        ``event-reorder``/``clock-skew``), ``engine`` the evaluation
        backend for window replays, ``deadline_s`` the per-incident
        diagnosis budget, ``minimize`` the minimality post-pass,
        ``repair`` the per-incident rollback planner (docs/repair.md),
        and ``journal``/``resume`` (or ``resume_from``) the write-ahead
        record journal: a SIGKILL'd monitor resumed over the same
        stream re-emits the identical record sequence.

        ``capacity`` bounds the window (events), ``lateness`` the
        ingest reorder tolerance, ``max_pending`` the queue of
        detections awaiting diagnosis (overflow sheds the oldest), and
        ``diagnose_every`` defers diagnosis to every Nth delivery.
        """
        if self._closed:
            raise ReproError("this Session is closed")
        from .streaming import (
            FileStreamSource,
            ScenarioStreamSource,
            StreamMonitor,
        )

        plan = self.options.faults
        if stream is not None:
            source = FileStreamSource(stream)
        else:
            if self.scenario_name is None:
                raise ReproError(
                    "monitor needs a scenario-mode Session or stream=PATH"
                )
            source = ScenarioStreamSource.for_name(
                self.scenario_name, faults=plan, **self._scenario_params
            )
        path = resume_from if resume_from is not None else self.journal_path
        journal = None
        if path is not None:
            journal = DiagnosisJournal(
                str(path),
                fingerprint=self._monitor_fingerprint(
                    source, capacity=capacity, lateness=lateness,
                    max_pending=max_pending, diagnose_every=diagnose_every,
                    reference_limit=reference_limit,
                ),
                resume=self._resume or resume_from is not None,
            )
            self.journal = journal
        try:
            monitor = StreamMonitor(
                source,
                capacity=capacity,
                lateness=lateness,
                engine=self.engine_config,
                minimize=self.options.minimize,
                repair=self.options.repair,
                deadline_s=self.options.deadline,
                max_pending=max_pending,
                diagnose_every=diagnose_every,
                reference_limit=reference_limit,
                journal=journal,
                telemetry=self.telemetry,
            )
            monitor.run()
            return monitor
        finally:
            if journal is not None:
                journal.close()

    def _monitor_fingerprint(self, source, **knobs) -> Dict[str, object]:
        """Identity of one monitoring run (journal resume matching).

        Keyed on the *unperturbed* stream digest plus every knob that
        changes which records get emitted.  Stream faults stay out on
        purpose: they are transport noise over the same underlying
        stream, and a resumed monitor may well see a differently
        perturbed feed — records are keyed per incident, so matching
        detections resume and diverging ones diagnose fresh.
        ``deadline_s`` follows the diagnose convention of staying out —
        resumed records are re-emitted verbatim either way.
        """
        fingerprint: Dict[str, object] = {
            "kind": "monitor",
            "source": source.describe(),
            "stream_sha": source.fingerprint(),
            "options": {
                "minimize": self.options.minimize,
                "repair": self.options.repair,
            },
        }
        fingerprint.update(knobs)
        return fingerprint

    # -- resilience ----------------------------------------------------------

    @contextlib.contextmanager
    def _journal_scope(self, kind: str, resume_from: Optional[str], **extra):
        """Open the write-ahead journal around one diagnosis call.

        The journal is attached through ``options.journal`` so both the
        differ and the autoref sweep see it; it is closed (and therefore
        flushed) whatever way the call exits, including Ctrl-C.
        """
        path = resume_from if resume_from is not None else self.journal_path
        if path is None:
            yield None
            return
        journal = DiagnosisJournal(
            str(path),
            fingerprint=self._journal_fingerprint(kind, **extra),
            resume=self._resume or resume_from is not None,
        )
        self.journal = journal
        saved = self.options.journal
        self.options.journal = journal
        try:
            yield journal
        finally:
            self.options.journal = saved
            journal.close()

    def _journal_fingerprint(self, kind: str, **extra) -> Dict[str, object]:
        """Identity of the search a journal belongs to.

        Mismatched fingerprints make resume a typed JournalError —
        replaying verdicts into a different search would corrupt the
        report.  ``workers`` and ``replay_cache`` are deliberately
        absent: they do not change any verdict (the determinism
        contract), so a serial run may resume a parallel one's journal.
        """
        opts = self.options
        plan = opts.faults
        fingerprint: Dict[str, object] = {
            "kind": kind,
            "scenario": self.scenario_name,
            "good_log": self.good.log.fingerprint(),
            "bad_log": self.bad.log.fingerprint(),
            "bad_event": str(self.bad_event),
            "options": {
                "max_rounds": opts.max_rounds,
                "enable_taint": opts.enable_taint,
                "enable_repair": opts.enable_repair,
                "enable_inversion": opts.enable_inversion,
                "minimize": opts.minimize,
                "repair": opts.repair,
                "faults": None if plan is None else plan.describe(),
            },
        }
        if kind == "diagnose":
            fingerprint["good_event"] = str(self.good_event)
        fingerprint.update(extra)
        return fingerprint

    # -- inspection ----------------------------------------------------------

    def tree(self, side: str = "bad") -> ProvenanceTree:
        """The provenance tree of one side's event (a classic query).

        ``side`` is ``"good"`` or ``"bad"``.  Equivalent to
        ``diffprov tree NAME --side bad``; the returned
        :class:`repro.provenance.tree.ProvenanceTree` renders with
        ``.render()`` and diffs against the other side's tree.  In
        query-time mode this triggers (and caches) one replay of that
        side's log.
        """
        execution, event, time = self._side(side)
        return provenance_query(execution.graph, event, time)

    def export(self, path: str, side: str = "bad") -> int:
        """Dump one side's provenance graph to ``path`` as JSON lines.

        Equivalent to ``diffprov export NAME --out path``.  Returns
        the number of records written; the file round-trips through
        :func:`repro.provenance.serialize.load_graph`.
        """
        from .provenance.serialize import dump_graph

        execution, _, _ = self._side(side)
        return dump_graph(execution.graph, path)

    def _side(self, side: str):
        if side not in ("good", "bad"):
            raise ReproError(f"side must be 'good' or 'bad', not {side!r}")
        self.setup()
        if side == "good":
            return self.good, self.good_event, self.good_time
        return self.bad, self.bad_event, self.bad_time

    def __repr__(self):
        target = self.scenario_name or "explicit"
        return (
            f"Session({target}, workers={self.options.workers}, "
            f"replay_cache={self.options.replay_cache})"
        )
