"""FINDSEED — locating the external stimulus of a provenance tree.

Networks respond to stimuli: there is one "special" branch of every
provenance tree that traces how the stimulus (an incoming packet, a
submitted job) made its way through the system, while the other
branches hold the reasons for each step (Section 4.2).  Each derivation
was triggered by the *last* of its preconditions to appear, so the seed
is found by repeatedly descending into the child with the highest
APPEAR timestamp.
"""

from __future__ import annotations

from ..provenance.tree import TupleNode

__all__ = ["find_seed", "seed_path"]


def find_seed(root: TupleNode) -> TupleNode:
    """The seed (triggering base event) of a provenance tree.

    Prefers the derivation's recorded trigger (the precondition that
    appeared last and fired the rule); when no trigger is recorded the
    descent falls back to the child with the highest APPEAR timestamp,
    which is the same thing computed from the graph.
    """
    node = root
    while node.children:
        trigger = node.trigger_child()
        if trigger is not None:
            node = trigger
            continue
        node = max(
            node.children,
            key=lambda child: (child.appear_time, -node.children.index(child)),
        )
    return node


def seed_path(root: TupleNode) -> list:
    """Seed-to-root path: the tree's "special" stimulus branch."""
    return find_seed(root).path_to_root()
