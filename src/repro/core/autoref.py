"""Automatic reference-event discovery (Section 4.9, future work).

The paper relies on the operator to supply the reference event but
notes that the process could be automated, inspired by ATPG's test
packets and Everflow's guided probes.  This module implements the
search: given the bad event, it proposes candidate reference events
from the provenance graph — same event type, similar headers, different
outcome — ranks them by similarity, and runs DiffProv against each
until a diagnosis succeeds with a non-empty Δ.

Candidates that align with *zero* changes are skipped: they are events
the network already treats consistently with the bad one, so they
cannot explain the anomaly (they are the "events we knew were suitable
references" the paper filters the other way around in Section 6.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..datalog.tuples import Tuple
from ..faults import FaultInjector
from ..replay.cache import ReplayCache
from ..replay.parallel import CandidateEvaluator
from ..resilience import Deadline
from .diffprov import DiffProv, DiffProvOptions, _replay_cache_scope
from .report import DiagnosisReport

__all__ = ["ReferenceCandidate", "AutoReferenceResult", "auto_diagnose",
           "propose_references", "propose_stream_references"]


class ReferenceCandidate:
    """A candidate reference event with its similarity score."""

    __slots__ = ("event", "score")

    def __init__(self, event: Tuple, score: float):
        self.event = event
        self.score = score

    def __repr__(self):
        return f"ReferenceCandidate({self.event}, score={self.score:.2f})"


class AutoReferenceResult:
    """Outcome of an automatic reference search."""

    __slots__ = ("report", "reference", "tried", "resilience")

    def __init__(
        self,
        report: Optional[DiagnosisReport],
        reference: Optional[Tuple],
        tried: Sequence[ReferenceCandidate],
        resilience=None,
    ):
        self.report = report
        self.reference = reference
        self.tried = list(tried)
        # Sweep-level resilience section (journal resume savings,
        # deadline expiry, evaluator healing); None when inactive.
        self.resilience = resilience

    @property
    def found(self) -> bool:
        return self.report is not None and self.report.success

    @property
    def stopped_early(self) -> bool:
        """Whether the sweep was cut short by the deadline."""
        return bool((self.resilience or {}).get("stopped_early"))

    def __repr__(self):
        state = f"reference={self.reference}" if self.found else "no reference"
        return f"AutoReferenceResult({state}, tried={len(self.tried)})"


def similarity(bad_event: Tuple, candidate: Tuple) -> float:
    """Field-agreement score between two same-table events.

    Equal fields score 1 each; the paper's guidance is "as similar as
    possible" *but with a different outcome*, so identical tuples are
    excluded by the caller.
    """
    return sum(
        1.0 for a, b in zip(bad_event.args, candidate.args) if a == b
    )


def propose_references(
    graph, bad_event: Tuple, limit: int = 10
) -> List[ReferenceCandidate]:
    """Ranked candidate reference events from a provenance graph.

    Candidates share the bad event's table (the same kind of outcome)
    but are distinct tuples; ranking is by header similarity, ties
    broken deterministically.
    """
    candidates = []
    for tup in graph.live_tuples(bad_event.table):
        if tup == bad_event or tup.arity != bad_event.arity:
            continue
        candidates.append(ReferenceCandidate(tup, similarity(bad_event, tup)))
    candidates.sort(key=lambda c: (-c.score, str(c.event)))
    return candidates[:limit]


def propose_stream_references(
    graph, bad_event: Tuple, healthy: Sequence[Tuple], limit: int = 10
) -> List[ReferenceCandidate]:
    """The streaming generalization of :func:`propose_references`.

    An online monitor knows more than a provenance graph does: each
    probe in the current window carries an *observed* outcome, so the
    good reference should come from events the network itself reported
    healthy — not merely events that look similar.  Candidates are the
    graph's live same-table tuples restricted to ``healthy`` (observed
    order, oldest first); ranking is by header similarity as in the
    offline search, with ties broken by *recency* — the freshest
    healthy observation is the best stand-in for "how the service
    behaves right now" — then deterministically by text.
    """
    order = {}
    for index, event in enumerate(healthy):
        order[event] = index  # the latest observation of a tuple wins
    candidates = []
    for tup in graph.live_tuples(bad_event.table):
        if tup == bad_event or tup.arity != bad_event.arity:
            continue
        if tup not in order:
            continue
        candidates.append(ReferenceCandidate(tup, similarity(bad_event, tup)))
    candidates.sort(key=lambda c: (-c.score, -order[c.event], str(c.event)))
    return candidates[:limit]


def _probe_reference(shared, index):
    """Worker-side diagnosis of one candidate reference.

    Runs on a pickled clone of the executions (telemetry stripped);
    the returned report is what a serial diagnosis of the same
    candidate would produce, minus the telemetry section.
    """
    program, good_execution, bad_execution, bad_event, options, events = shared
    for execution in {id(good_execution): good_execution,
                      id(bad_execution): bad_execution}.values():
        if getattr(execution, "replay_cache", False) is None:
            # Worker-local snapshot cache, shared by every candidate
            # diagnosis this worker performs.
            execution.replay_cache = ReplayCache()
    debugger = DiffProv(program, options)
    return debugger.diagnose(
        good_execution, bad_execution, events[index], bad_event
    )


def auto_diagnose(
    program,
    good_execution,
    bad_execution,
    bad_event: Tuple,
    options: Optional[DiffProvOptions] = None,
    limit: int = 10,
    workers: Optional[int] = None,
) -> AutoReferenceResult:
    """Diagnose ``bad_event`` without an operator-supplied reference.

    ``good_execution`` is where references are searched for — typically
    the same execution as the bad one (partial failures) or an earlier
    one (sudden failures).  Returns the first successful diagnosis with
    a non-empty Δ, together with every candidate that was tried.

    ``workers`` (default: ``options.workers``) > 1 evaluates candidate
    diagnoses speculatively in waves of that size on a process pool.
    Results are consumed in ranking order and the sweep stops at the
    first success, so the chosen reference, its report, and the tried
    list are identical to the serial sweep — candidates beyond the
    winner are discarded unread (docs/performance.md).
    """
    debugger = DiffProv(program, options)
    opts = debugger.options
    if workers is None:
        workers = getattr(opts, "workers", 1) or 1
    journal = getattr(opts, "journal", None)
    # Normalize the budget once so every candidate diagnosis shares the
    # sweep's end-to-end deadline (a raw seconds value would otherwise
    # restart per candidate); the original options value is restored.
    saved_deadline = getattr(opts, "deadline", None)
    deadline = Deadline.of(saved_deadline)
    opts.deadline = deadline
    try:
        graph = good_execution.graph
        candidates = propose_references(graph, bad_event, limit)
        tried: List[ReferenceCandidate] = []
        stopped_early = False
        if (
            workers > 1
            and len(candidates) > 1
            and not (journal is not None and journal.has_verdicts)
        ):
            result = _auto_diagnose_parallel(
                program, good_execution, bad_execution, bad_event,
                opts, candidates, workers, journal, deadline,
            )
            if result is not None:
                return result
            # Unpicklable context: fall through to the serial sweep.
        # One snapshot cache stays warm across the whole sweep: every
        # candidate diagnosis replays the same logs, so later candidates
        # restore what earlier ones derived.
        with _replay_cache_scope(opts, good_execution, bad_execution):
            for candidate in candidates:
                if deadline is not None and deadline.expired:
                    stopped_early = True
                    break
                key = str(candidate.event)
                if journal is not None:
                    verdict = journal.lookup("autoref", key)
                    if verdict is False:
                        # A previous run already diagnosed and rejected
                        # this candidate; skip its whole diagnosis.  A
                        # recorded winner is re-diagnosed fresh — its
                        # report is needed, and re-running it yields
                        # the byte-identical one.
                        tried.append(candidate)
                        continue
                tried.append(candidate)
                report = debugger.diagnose(
                    good_execution, bad_execution, candidate.event, bad_event
                )
                accepted = report.success and report.num_changes > 0
                if journal is not None:
                    journal.record("autoref", key, accepted)
                if accepted:
                    return AutoReferenceResult(
                        report, candidate.event, tried,
                        resilience=_sweep_resilience(
                            journal, deadline, stopped_early
                        ),
                    )
        return AutoReferenceResult(
            None, None, tried,
            resilience=_sweep_resilience(journal, deadline, stopped_early),
        )
    finally:
        opts.deadline = saved_deadline


def _auto_diagnose_parallel(
    program, good_execution, bad_execution, bad_event, options,
    candidates, workers, journal=None, deadline=None,
) -> Optional[AutoReferenceResult]:
    """Speculative wave evaluation of the candidate sweep.

    Each wave diagnoses the next ``workers`` candidates concurrently;
    the results are read in ranking order and the first success wins,
    exactly as in the serial sweep.  Returns None when the executions
    cannot be shipped to workers.
    """
    telemetry = getattr(options, "telemetry", None) if options else None
    plan = getattr(options, "faults", None) if options else None
    evaluator = CandidateEvaluator(
        workers,
        telemetry,
        policy=getattr(options, "resilience", None) if options else None,
        faults=(
            FaultInjector(plan, "evaluator")
            if plan is not None and plan.worker_crash > 0.0
            else None
        ),
    )
    events = [candidate.event for candidate in candidates]
    shared = (program, good_execution, bad_execution, bad_event, options,
              events)
    tried: List[ReferenceCandidate] = []
    stopped_early = False

    def _result(report, reference):
        return AutoReferenceResult(
            report, reference, tried,
            resilience=_sweep_resilience(
                journal, deadline, stopped_early, evaluator
            ),
        )

    for wave_start in range(0, len(candidates), workers):
        if deadline is not None and deadline.expired:
            stopped_early = True
            break
        wave = candidates[wave_start : wave_start + workers]
        results = evaluator.evaluate(
            _ProbeWindow(_probe_reference, wave_start), shared, len(wave)
        )
        if results is None:
            return None if not tried else _result(None, None)
        for candidate, (status, value) in zip(wave, results):
            tried.append(candidate)
            if status == "err":
                raise value
            accepted = value.success and value.num_changes > 0
            if journal is not None:
                journal.record("autoref", str(candidate.event), accepted)
            if accepted:
                return _result(value, candidate.event)
    return _result(None, None)


def _sweep_resilience(journal, deadline, stopped_early, evaluator=None):
    """Sweep-level resilience section; None when nothing was active."""
    section: dict = {}
    if journal is not None:
        section["journal"] = {
            "path": journal.path,
            "resumed": journal.resumed,
            "skipped_candidates": journal.skipped,
            "entries_written": journal.writes,
        }
    if evaluator is not None:
        counters = {k: v for k, v in evaluator.counters().items() if v}
        if counters:
            section["evaluator"] = counters
    if deadline is not None:
        section["deadline"] = {
            "seconds": deadline.seconds,
            "expired": deadline.expired,
            "slack_s": round(deadline.timeout(), 3),
        }
    if stopped_early:
        section["stopped_early"] = True
    return section or None


class _ProbeWindow:
    """Offsets a probe's job index into a larger candidate list, so
    every wave can share one ``shared`` tuple holding all candidates."""

    __slots__ = ("func", "offset")

    def __init__(self, func, offset: int):
        self.func = func
        self.offset = offset

    def __call__(self, shared, index: int):
        return self.func(shared, index + self.offset)
