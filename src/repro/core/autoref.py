"""Automatic reference-event discovery (Section 4.9, future work).

The paper relies on the operator to supply the reference event but
notes that the process could be automated, inspired by ATPG's test
packets and Everflow's guided probes.  This module implements the
search: given the bad event, it proposes candidate reference events
from the provenance graph — same event type, similar headers, different
outcome — ranks them by similarity, and runs DiffProv against each
until a diagnosis succeeds with a non-empty Δ.

Candidates that align with *zero* changes are skipped: they are events
the network already treats consistently with the bad one, so they
cannot explain the anomaly (they are the "events we knew were suitable
references" the paper filters the other way around in Section 6.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..datalog.tuples import Tuple
from .diffprov import DiffProv, DiffProvOptions
from .report import DiagnosisReport

__all__ = ["ReferenceCandidate", "AutoReferenceResult", "auto_diagnose",
           "propose_references"]


class ReferenceCandidate:
    """A candidate reference event with its similarity score."""

    __slots__ = ("event", "score")

    def __init__(self, event: Tuple, score: float):
        self.event = event
        self.score = score

    def __repr__(self):
        return f"ReferenceCandidate({self.event}, score={self.score:.2f})"


class AutoReferenceResult:
    """Outcome of an automatic reference search."""

    __slots__ = ("report", "reference", "tried")

    def __init__(
        self,
        report: Optional[DiagnosisReport],
        reference: Optional[Tuple],
        tried: Sequence[ReferenceCandidate],
    ):
        self.report = report
        self.reference = reference
        self.tried = list(tried)

    @property
    def found(self) -> bool:
        return self.report is not None and self.report.success

    def __repr__(self):
        state = f"reference={self.reference}" if self.found else "no reference"
        return f"AutoReferenceResult({state}, tried={len(self.tried)})"


def similarity(bad_event: Tuple, candidate: Tuple) -> float:
    """Field-agreement score between two same-table events.

    Equal fields score 1 each; the paper's guidance is "as similar as
    possible" *but with a different outcome*, so identical tuples are
    excluded by the caller.
    """
    return sum(
        1.0 for a, b in zip(bad_event.args, candidate.args) if a == b
    )


def propose_references(
    graph, bad_event: Tuple, limit: int = 10
) -> List[ReferenceCandidate]:
    """Ranked candidate reference events from a provenance graph.

    Candidates share the bad event's table (the same kind of outcome)
    but are distinct tuples; ranking is by header similarity, ties
    broken deterministically.
    """
    candidates = []
    for tup in graph.live_tuples(bad_event.table):
        if tup == bad_event or tup.arity != bad_event.arity:
            continue
        candidates.append(ReferenceCandidate(tup, similarity(bad_event, tup)))
    candidates.sort(key=lambda c: (-c.score, str(c.event)))
    return candidates[:limit]


def auto_diagnose(
    program,
    good_execution,
    bad_execution,
    bad_event: Tuple,
    options: Optional[DiffProvOptions] = None,
    limit: int = 10,
) -> AutoReferenceResult:
    """Diagnose ``bad_event`` without an operator-supplied reference.

    ``good_execution`` is where references are searched for — typically
    the same execution as the bad one (partial failures) or an earlier
    one (sudden failures).  Returns the first successful diagnosis with
    a non-empty Δ, together with every candidate that was tried.
    """
    debugger = DiffProv(program, options)
    graph = good_execution.graph
    tried: List[ReferenceCandidate] = []
    for candidate in propose_references(graph, bad_event, limit):
        tried.append(candidate)
        report = debugger.diagnose(
            good_execution, bad_execution, candidate.event, bad_event
        )
        if report.success and report.num_changes > 0:
            return AutoReferenceResult(report, candidate.event, tried)
    return AutoReferenceResult(None, None, tried)
