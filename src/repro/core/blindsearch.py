"""The blind-search baseline DiffProv's complexity is compared against.

Section 4.7: "The number of steps DiffProv takes is linear in the
number of vertexes in T_G.  This is substantially faster than a naive
approach that attempts random changes to mutable base tuples (or
combinations of such tuples), which would have an exponential
complexity."

This module implements exactly that naive approach: enumerate
single-tuple changes drawn from the two executions' mutable base
tuples, then pairs, then triples ..., replaying the bad log after each
candidate set until the expected outcome appears.  It exists for the
`bench_ablation_guided` benchmark and as a correctness cross-check
(when it terminates, its answer must make the expected event appear,
just like DiffProv's).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..datalog.tuples import Tuple
from ..replay.replayer import Change

__all__ = ["BlindSearchResult", "blind_search"]


class BlindSearchResult:
    """Outcome of a blind search: the changes found and the work done."""

    __slots__ = ("changes", "attempts", "replays", "found")

    def __init__(self, changes, attempts, replays, found):
        self.changes = list(changes)
        self.attempts = attempts
        self.replays = replays
        self.found = found

    def __repr__(self):
        state = "found" if self.found else "exhausted"
        return (
            f"BlindSearchResult({state}, {len(self.changes)} changes, "
            f"{self.attempts} attempts)"
        )


def candidate_changes(good_execution, bad_execution) -> List[Change]:
    """Every single-tuple change the naive search considers.

    Insertions of mutable base tuples present in the good run but not
    the bad one, and removals of mutable base tuples present only in
    the bad run.
    """
    good_base = {
        t
        for t in good_execution.engine.store.base_tuples()
        if good_execution.engine.is_mutable(t)
    }
    bad_base = {
        t
        for t in bad_execution.engine.store.base_tuples()
        if bad_execution.engine.is_mutable(t)
    }
    changes: List[Change] = []
    for tup in sorted(good_base - bad_base, key=str):
        changes.append(Change(insert=tup, reason="blind candidate"))
    for tup in sorted(bad_base - good_base, key=str):
        changes.append(Change(remove=[tup], reason="blind candidate"))
    return changes


def blind_search(
    good_execution,
    bad_execution,
    expected_event: Tuple,
    anchor_index: Optional[int] = None,
    max_combination: int = 3,
    max_attempts: int = 10_000,
) -> BlindSearchResult:
    """Find changes that make ``expected_event`` appear, by brute force.

    Tries all single changes, then all pairs, then triples, up to
    ``max_combination`` — the exponential blowup DiffProv avoids.
    """
    candidates = candidate_changes(good_execution, bad_execution)
    attempts = 0
    replays = 0
    for size in range(1, max_combination + 1):
        for combination in itertools.combinations(candidates, size):
            attempts += 1
            if attempts > max_attempts:
                return BlindSearchResult([], attempts - 1, replays, False)
            result = bad_execution.replay(combination, anchor_index)
            replays += 1
            if result.alive(expected_event):
                return BlindSearchResult(combination, attempts, replays, True)
    return BlindSearchResult([], attempts, replays, False)
