"""Diagnosis reports: what DiffProv hands back to the operator.

A report either carries the root-cause changes Δ(B→G), or a typed
failure in the taxonomy of Section 4.7 (seed-type mismatch, immutable
change required, non-invertible computation) together with enough
context for the operator to pick a better reference event.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from ..datalog.tuples import Tuple
from ..errors import (
    DeadlineExceeded,
    DiagnosisFailure,
    ImmutableChangeRequired,
    NonInvertibleError,
    SeedTypeMismatch,
)
from ..replay.replayer import Change

__all__ = [
    "RoundInfo",
    "DiagnosisReport",
    "FAILURE_CATEGORIES",
    "CONFIDENCE_LEVELS",
]

FAILURE_CATEGORIES = (
    "seed-type-mismatch",
    "immutable-change-required",
    "non-invertible",
    "stuck",
    "max-rounds",
    "deadline-exceeded",
)

# Confidence annotations for root-cause candidates, best first.
# "confirmed" — the aligned trees were fully verified; "likely" — the
# diagnosis succeeded but some provenance was missing (lost log events
# or unreachable partitions), so verification was partial; "uncertain"
# — the change was proposed on a path the diagnosis could not complete.
CONFIDENCE_LEVELS = ("confirmed", "likely", "uncertain")

_CONFIDENCE_RANK = {level: rank for rank, level in enumerate(CONFIDENCE_LEVELS)}


class RoundInfo:
    """One roll-back/roll-forward round of the DiffProv loop."""

    __slots__ = ("number", "divergence", "expected", "changes")

    def __init__(
        self,
        number: int,
        divergence: Optional[Tuple],
        expected: Optional[Tuple],
        changes: Sequence[Change],
    ):
        self.number = number
        self.divergence = divergence
        self.expected = expected
        self.changes = list(changes)

    def __repr__(self):
        return (
            f"RoundInfo(#{self.number}, divergence={self.divergence}, "
            f"{len(self.changes)} changes)"
        )


class DiagnosisReport:
    """The outcome of one differential provenance query."""

    def __init__(
        self,
        success: bool,
        changes: Sequence[Change],
        rounds: Sequence[RoundInfo],
        failure: Optional[Exception] = None,
        timings: Optional[Dict[str, float]] = None,
        good_tree_size: int = 0,
        bad_tree_size: int = 0,
        good_seed: Optional[Tuple] = None,
        bad_seed: Optional[Tuple] = None,
        replays: int = 0,
        verified: bool = False,
        degraded: bool = False,
        confidences: Optional[Sequence[str]] = None,
        unknown_subtrees: Sequence[Tuple] = (),
        distributed_stats: Optional[Dict[str, object]] = None,
        lost_events: int = 0,
        telemetry: Optional[Dict[str, object]] = None,
        resilience: Optional[Dict[str, object]] = None,
        repair: Optional[Dict[str, object]] = None,
    ):
        self.success = success
        self.changes = list(changes)
        self.rounds = list(rounds)
        self.failure = failure
        self.timings = dict(timings or {})
        self.good_tree_size = good_tree_size
        self.bad_tree_size = bad_tree_size
        self.good_seed = good_seed
        self.bad_seed = bad_seed
        self.replays = replays
        self.verified = verified
        # Degradation surface: set only when faults were in play.
        self.degraded = degraded
        self.confidences = list(confidences) if confidences is not None else None
        self.unknown_subtrees = list(unknown_subtrees)
        self.distributed_stats = dict(distributed_stats or {})
        # Recorder events the persisted graph lost; the differ recovers
        # them by replaying the lossless event log, but the count stays
        # visible so the operator knows the graph was reconstructed.
        self.lost_events = lost_events
        # Telemetry section (see repro.observability): a dict with
        # "metrics" (deterministic counts), "phases" (per-phase wall
        # time from the span tree), and "spans".  None when the
        # diagnosis ran without telemetry.
        self.telemetry = telemetry
        # Resilience section (docs/resilience.md): journal path and
        # resume savings, evaluator pool restarts/timeouts, quarantined
        # cache snapshots, deadline slack.  None when no resilience
        # machinery was active.  Like timings/telemetry it describes
        # *how* the diagnosis ran and is excluded from canonical_dict()
        # — a resumed run differs here (candidates skipped) while its
        # canonical report stays byte-identical.
        self.resilience = resilience
        # Rollback-planning section (repro.repair, docs/repair.md):
        # ranked, replay-verified fix plans plus the rejected
        # candidates.  Unlike timings/telemetry/resilience it is a
        # *conclusion*, so it IS part of canonical_dict() and must be
        # byte-identical across workers × cache × resume.  None when
        # planning was not requested.
        self.repair = repair

    # -- derived views -----------------------------------------------------

    @property
    def num_changes(self) -> int:
        """Size of the diagnosis — the "DiffProv" row of Table 1."""
        return len(self.changes)

    @property
    def changes_per_round(self) -> List[int]:
        return [len(r.changes) for r in self.rounds if r.changes]

    @property
    def failure_category(self) -> Optional[str]:
        if self.success:
            return None
        if isinstance(self.failure, DeadlineExceeded):
            return "deadline-exceeded"
        if isinstance(self.failure, SeedTypeMismatch):
            return "seed-type-mismatch"
        if isinstance(self.failure, ImmutableChangeRequired):
            return "immutable-change-required"
        if isinstance(self.failure, NonInvertibleError):
            return "non-invertible"
        if isinstance(self.failure, DiagnosisFailure):
            return "stuck"
        return "max-rounds" if self.failure is None else "stuck"

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    @property
    def reasoning_seconds(self) -> float:
        """Time in DiffProv proper, excluding replay and tree queries."""
        return sum(
            seconds
            for key, seconds in self.timings.items()
            if key not in ("replay", "query")
        )

    def root_causes(self) -> List[str]:
        return [change.describe() for change in self.changes]

    def candidates(self) -> List:
        """Root-cause candidates as ``(change, confidence)``, best first.

        Without fault injection every change of a successful diagnosis
        is ``confirmed`` (and ``uncertain`` on failure); under faults
        the per-change annotations computed by the differ are used.
        The sort is stable, so equal-confidence candidates keep their
        discovery order.
        """
        if self.confidences is not None and len(self.confidences) == len(
            self.changes
        ):
            confidences = list(self.confidences)
        else:
            default = "confirmed" if self.success else "uncertain"
            confidences = [default] * len(self.changes)
        ranked = sorted(
            zip(self.changes, confidences),
            key=lambda pair: _CONFIDENCE_RANK.get(pair[1], len(CONFIDENCE_LEVELS)),
        )
        return ranked

    def canonical_dict(self) -> Dict[str, object]:
        """The report's deterministic content, as plain JSON types.

        This is the determinism contract of the replay cache and the
        parallel candidate evaluator (docs/performance.md): everything
        here is byte-identical across ``workers`` settings and cache
        states.  Wall-clock ``timings`` and the ``telemetry`` section
        are deliberately excluded — they measure *how* the diagnosis
        ran, not what it concluded.
        """
        return {
            "success": self.success,
            "failure_category": self.failure_category,
            "failure": None if self.failure is None else str(self.failure),
            "changes": [
                {"change": change.describe(), "reason": change.reason}
                for change in self.changes
            ],
            "rounds": [
                {
                    "number": info.number,
                    "divergence": _text(info.divergence),
                    "expected": _text(info.expected),
                    "changes": [change.describe() for change in info.changes],
                }
                for info in self.rounds
            ],
            "good_tree_size": self.good_tree_size,
            "bad_tree_size": self.bad_tree_size,
            "good_seed": _text(self.good_seed),
            "bad_seed": _text(self.bad_seed),
            "replays": self.replays,
            "verified": self.verified,
            "degraded": self.degraded,
            "confidences": (
                None if self.confidences is None else list(self.confidences)
            ),
            "unknown_subtrees": [str(t) for t in self.unknown_subtrees],
            "distributed_stats": {
                side: repr(stats)
                for side, stats in sorted(self.distributed_stats.items())
            },
            "lost_events": self.lost_events,
            "repair": self.repair,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        lines = []
        annotate = self.degraded and self.confidences is not None
        if self.success:
            lines.append(
                f"DiffProv identified {self.num_changes} root-cause "
                f"change(s) in {len(self.rounds)} round(s):"
            )
            for index, change in enumerate(self.changes):
                suffix = ""
                if annotate and index < len(self.confidences):
                    suffix = f" [confidence: {self.confidences[index]}]"
                lines.append(f"  - {change.describe()}{suffix}")
            if self.verified:
                lines.append("  (verified: applying the changes aligns the trees)")
        else:
            lines.append(f"DiffProv failed: {self.failure_category}")
            if self.failure is not None:
                lines.append(f"  {self.failure}")
            if self.changes:
                lines.append("  attempted changes so far:")
                for index, change in enumerate(self.changes):
                    suffix = ""
                    if annotate and index < len(self.confidences):
                        suffix = f" [confidence: {self.confidences[index]}]"
                    lines.append(f"  - {change.describe()}{suffix}")
        if self.degraded:
            lines.append(
                f"  DEGRADED: {len(self.unknown_subtrees)} subtree(s) "
                f"UNKNOWN (lost or unreachable provenance)"
            )
            for tup in self.unknown_subtrees:
                lines.append(f"    ? {tup}")
            if self.lost_events:
                lines.append(
                    f"  {self.lost_events} logged provenance event(s) were "
                    f"lost; the graph was recovered by replaying the event log"
                )
        # Distribution accounting is attached on every run (healthy
        # queries show their fetch counts too, not just degraded ones).
        for side in sorted(self.distributed_stats):
            lines.append(
                f"  distributed[{side}]: {self.distributed_stats[side]!r}"
            )
        lines.append(
            f"  trees: good={self.good_tree_size} vertexes, "
            f"bad={self.bad_tree_size} vertexes; "
            f"seeds: {self.good_seed} / {self.bad_seed}"
        )
        lines.extend(self._repair_lines())
        lines.extend(self._resilience_lines())
        lines.extend(self._phase_lines())
        return "\n".join(lines)

    def _repair_lines(self) -> List[str]:
        section = self.repair
        if not section:
            return []
        status = section.get("status")
        if status != "ok":
            return [f"  repair: {status} (no plans)"]
        plans = section.get("plans") or []
        rejected = section.get("rejected") or []
        lines = [
            f"  repair: {len(plans)} verified plan(s), "
            f"{len(rejected)} rejected, "
            f"{section.get('probes', 0)} good probe(s) held "
            f"({section.get('replays', 0)} verification replay(s))"
        ]
        for plan in plans:
            lines.append(
                f"    #{plan.get('rank')} [{plan.get('origin')}] "
                f"edit={plan.get('edit_size')} "
                f"blast={plan.get('blast_radius')}"
            )
            for step in plan.get("steps", ()):
                lines.append(f"       {step}")
        for entry in rejected:
            lines.append(
                f"    rejected [{entry.get('origin')}]: {entry.get('reason')}"
            )
        return lines

    def _resilience_lines(self) -> List[str]:
        section = self.resilience or {}
        if not section:
            return []
        lines = ["  resilience:"]
        journal = section.get("journal")
        if journal:
            detail = f"journal {journal.get('path')}"
            if journal.get("resumed"):
                detail += (
                    f" (resumed; {journal.get('skipped_candidates', 0)} "
                    f"candidate(s) skipped)"
                )
            lines.append(f"    {detail}")
        evaluator = section.get("evaluator")
        if evaluator:
            lines.append(
                f"    evaluator: {evaluator.get('pool_restarts', 0)} pool "
                f"restart(s), {evaluator.get('timeouts', 0)} timeout(s), "
                f"{evaluator.get('hedges', 0)} hedge(s), "
                f"{evaluator.get('inline_fallbacks', 0)} inline fallback(s)"
            )
        cache = section.get("cache")
        if cache:
            lines.append(
                f"    cache: {cache.get('corrupt', 0)} corrupt snapshot(s) "
                f"quarantined"
            )
        deadline = section.get("deadline")
        if deadline:
            state = (
                "EXPIRED" if deadline.get("expired")
                else f"{deadline.get('slack_s')}s slack"
            )
            lines.append(
                f"    deadline: {deadline.get('seconds')}s budget, {state}"
            )
        return lines

    def _phase_lines(self) -> List[str]:
        """Human-readable per-phase breakdown (telemetry runs only).

        Tolerant of sparse entries: a phase that recorded zero spans
        (or a partially filled dict from a degraded run) renders with
        zeros instead of raising.
        """
        phases = (self.telemetry or {}).get("phases") or []
        rows = [
            {
                "name": str(p.get("name", "?")),
                "seconds": float(p.get("seconds") or 0.0),
                "count": int(p.get("count") or 0),
            }
            for p in phases
            if isinstance(p, dict)
        ]
        if not rows:
            return []
        lines = ["  phase breakdown:"]
        width = max((len(p["name"]) for p in rows), default=0)
        # Shares are relative to the root diagnosis span (nested spans
        # overlap, so a plain sum would double-count).
        total = next(
            (p["seconds"] for p in rows if p["name"] == "diffprov.diagnose"),
            None,
        )
        if total is None:
            total = sum(p["seconds"] for p in rows)
        for p in rows:
            share = (p["seconds"] / total * 100.0) if total else 0.0
            lines.append(
                f"    {p['name']:<{width}}  {p['seconds']:>10.6f}s  "
                f"x{p['count']:<4d} {share:5.1f}%"
            )
        return lines

    def __repr__(self):
        state = "success" if self.success else f"failure:{self.failure_category}"
        return f"DiagnosisReport({state}, {self.num_changes} changes)"


def _text(value) -> Optional[str]:
    return None if value is None else str(value)
