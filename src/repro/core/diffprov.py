"""The DiffProv algorithm (Section 4 / Figure 3 of the paper).

The implementation follows the paper's three-step structure:

1. **FINDSEED** — locate the external stimuli of both trees and check
   that they have the same type (:mod:`repro.core.seeds`).
2. **Align** — walk the good tree's seed→root branch, predicting via
   taint formulas which tuples *should* exist in the bad execution; the
   first prediction that fails is the divergence (FIRSTDIV).
3. **MAKEAPPEAR / UPDATETREE** — use the good tree as a guide to make
   the missing tuple appear: repair failing conditions, insert missing
   mutable base tuples, remove selector blockers; then replay the bad
   log on a clone with the accumulated changes and repeat until the
   trees are equivalent.

Using the good tree as a guide reduces an exponential search over
combinations of base-tuple changes to a walk that is linear in the size
of the good tree (Section 4.7).
"""

from __future__ import annotations

import hashlib as _hashlib
import time as _time
from contextlib import contextmanager, nullcontext
from typing import Dict, List, Optional, Sequence, Set

from ..datalog.engine import match_atom
from ..datalog.expr import Const, Var
from ..datalog.rules import Program, Rule
from ..datalog.tuples import TableKind, Tuple
from ..errors import (
    DeadlineExceeded,
    DiagnosisFailure,
    EvaluationError,
    FaultError,
    ImmutableChangeRequired,
    NonInvertibleError,
    ReproError,
    SeedTypeMismatch,
    StepLimitExceeded,
)
from ..faults import FaultInjector
from ..observability import active as _active_telemetry
from ..provenance.distributed import PartitionedProvenance
from ..provenance.query import provenance_query
from ..provenance.tree import TupleNode
from ..replay.cache import ReplayCache
from ..replay.execution import Execution
from ..replay.parallel import CandidateEvaluator
from ..replay.replayer import Change, ReplayResult
from ..resilience import Deadline
from .equivalence import EquivalenceRelation
from .repair import repair_condition
from .report import DiagnosisReport, RoundInfo
from .seeds import find_seed
from .taint import TaintAnnotation

__all__ = ["DiffProvOptions", "DiffProv"]


class DiffProvOptions:
    """Tuning knobs; the defaults match the paper's prototype.

    The disable flags exist for the ablation benchmarks: without taint
    formulas DiffProv degenerates to a literal tree comparison, and
    without inversion it must give up on rules whose fields are only
    reachable through computations.
    """

    __slots__ = (
        "max_rounds",
        "enable_taint",
        "enable_repair",
        "enable_inversion",
        "verify",
        "max_competitors",
        "minimize",
        "faults",
        "telemetry",
        "workers",
        "replay_cache",
        "journal",
        "deadline",
        "resilience",
        "repair",
    )

    def __init__(
        self,
        max_rounds: int = 10,
        enable_taint: bool = True,
        enable_repair: bool = True,
        enable_inversion: bool = True,
        verify: bool = True,
        max_competitors: int = 3,
        minimize: bool = False,
        faults=None,
        telemetry=None,
        workers: int = 1,
        replay_cache: bool = True,
        journal=None,
        deadline=None,
        resilience=None,
        repair: bool = False,
    ):
        self.max_rounds = max_rounds
        self.enable_taint = enable_taint
        self.enable_repair = enable_repair
        self.enable_inversion = enable_inversion
        self.verify = verify
        self.max_competitors = max_competitors
        # Section 4.9 ("Minimality"): Δ(B→G) is not necessarily minimal
        # because DiffProv only follows the good tree's derivations.
        # With minimize=True a greedy post-pass drops every change whose
        # removal still leaves the trees aligned (one replay per
        # candidate change).
        self.minimize = minimize
        # Optional FaultPlan: the initial provenance queries go through
        # PartitionedProvenance with fallible fetches, and the differ
        # degrades gracefully instead of crashing on missing provenance.
        self.faults = faults
        # Optional Telemetry: a span tree and metric counters covering
        # every phase of the diagnosis (see repro.observability).  None
        # (or a NullTelemetry) keeps every hot path uninstrumented.
        self.telemetry = telemetry
        # Candidate replays (the minimality post-pass, autoref's
        # reference sweep) fan out over a process pool when workers > 1.
        # Results are consumed in serial order, so reports stay
        # byte-identical to workers=1 (docs/performance.md).
        self.workers = workers
        # Snapshot caching for diagnosis replays (repro.replay.cache);
        # a pure speed-up, disabled with replay_cache=False.
        self.replay_cache = replay_cache
        # Optional DiagnosisJournal (repro.resilience): every phase
        # boundary, explored change-set, and candidate verdict is
        # appended and fsync'd, so a killed diagnosis resumes instead
        # of restarting (docs/resilience.md).
        self.journal = journal
        # Optional end-to-end budget: None, seconds, or a Deadline.
        # Expiry degrades the run to a partial report with the
        # best-so-far candidates.
        self.deadline = deadline
        # Optional ResiliencePolicy for the candidate evaluator (pool
        # respawn bound, per-candidate timeouts, hedging).
        self.resilience = resilience
        # Rollback planning (repro.repair, docs/repair.md): after a
        # successful diagnosis, enumerate and replay-verify ranked fix
        # plans and attach them as report.repair.  Distinct from
        # enable_repair, which gates the condition-repair value
        # synthesis inside the loop itself.
        self.repair = repair

    def __getstate__(self):
        # Shipped to worker processes along with the diagnosis state;
        # telemetry (wall clocks, open spans), the journal (an open
        # fsync'd file handle), and the deadline (a live clock
        # callable) stay behind.
        state = {name: getattr(self, name) for name in self.__slots__}
        state["telemetry"] = None
        state["journal"] = None
        state["deadline"] = None
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


class DiffProv:
    """A differential provenance debugger for one NDlog program."""

    def __init__(self, program: Program, options: Optional[DiffProvOptions] = None):
        self.program = program
        self.options = options or DiffProvOptions()

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def diagnose(
        self,
        good: Execution,
        bad: Execution,
        good_event: Tuple,
        bad_event: Tuple,
        good_time: Optional[int] = None,
        bad_time: Optional[int] = None,
    ) -> DiagnosisReport:
        """Run the full DiffProv loop; never raises diagnosis failures —
        they come back as a typed failure report (Section 4.7)."""
        timings: Dict[str, float] = {}
        telemetry = _active_telemetry(self.options.telemetry)
        state = _DiagnosisState(self, good, bad, timings, telemetry)
        with _replay_cache_scope(self.options, good, bad) as cache:
            state.replay_cache = cache
            with _deadline_scope(state.deadline, good, bad):
                return self._diagnose(state, good, bad, good_event,
                                      bad_event, good_time, bad_time,
                                      telemetry)

    def _diagnose(
        self, state, good, bad, good_event, bad_event, good_time, bad_time,
        telemetry,
    ) -> DiagnosisReport:
        if telemetry is None:
            try:
                report = state.run(good_event, bad_event, good_time, bad_time)
                state.maybe_repair(report)
            except (
                DeadlineExceeded,
                DiagnosisFailure,
                NonInvertibleError,
                StepLimitExceeded,
            ) as failure:
                report = state.failure_report(failure)
            report.resilience = state.resilience_section()
            state.journal_result(report)
            return report
        # Attach the diagnosis telemetry to both executions for the
        # duration of the run, so every query-time replay they perform
        # lands inside the diagnosis span tree.  Execution stand-ins
        # (the MapReduce runtime, the network emulator) that don't
        # carry telemetry are left alone — their replays simply don't
        # contribute engine spans.
        saved_good = getattr(good, "telemetry", None)
        saved_bad = getattr(bad, "telemetry", None)
        if hasattr(good, "telemetry"):
            good.telemetry = telemetry
        if hasattr(bad, "telemetry"):
            bad.telemetry = telemetry
        try:
            try:
                with telemetry.span(
                    "diffprov.diagnose", good=good.name, bad=bad.name
                ) as root:
                    report = state.run(
                        good_event, bad_event, good_time, bad_time
                    )
                    state.maybe_repair(report)
                    root.set("success", report.success)
                    root.set("rounds", len(report.rounds))
            except (
                DeadlineExceeded,
                DiagnosisFailure,
                NonInvertibleError,
                StepLimitExceeded,
            ) as failure:
                report = state.failure_report(failure)
        finally:
            if hasattr(good, "telemetry"):
                good.telemetry = saved_good
            if hasattr(bad, "telemetry"):
                bad.telemetry = saved_bad
        state.fold_metrics()
        report.telemetry = telemetry.report_section()
        report.resilience = state.resilience_section()
        state.journal_result(report)
        return report

    # Convenience: the vertex-count comparison used by Table 1.
    def tree_sizes(
        self,
        good: Execution,
        bad: Execution,
        good_event: Tuple,
        bad_event: Tuple,
    ):
        good_tree = provenance_query(good.graph, good_event)
        bad_tree = provenance_query(bad.graph, bad_event)
        return good_tree.size(), bad_tree.size()


@contextmanager
def _replay_cache_scope(options, good, bad):
    """Attach one shared ReplayCache to both executions for one run.

    Mirrors the telemetry attach in :meth:`DiffProv.diagnose`: the
    previous value is always restored, execution stand-ins without a
    ``replay_cache`` attribute are left alone, and a cache already
    attached by the caller (e.g. a :class:`repro.api.Session`, which
    keeps one warm across diagnoses) is reused rather than replaced.
    With ``options.replay_cache`` false, any attached cache is detached
    for the duration — the explicit off switch wins.
    """
    targets = [
        execution
        for execution in ([good] if good is bad else [good, bad])
        if hasattr(execution, "replay_cache")
    ]
    enabled = getattr(options, "replay_cache", True)
    saved = [(execution, execution.replay_cache) for execution in targets]
    cache = None
    if enabled:
        for execution in targets:
            if execution.replay_cache is not None:
                cache = execution.replay_cache
                break
        if cache is None and targets:
            plan = getattr(options, "faults", None)
            cache = ReplayCache(
                faults=(
                    FaultInjector(plan, "snapshot")
                    if plan is not None and plan.snapshot_corrupt > 0.0
                    else None
                )
            )
        for execution in targets:
            if execution.replay_cache is None:
                execution.replay_cache = cache
    else:
        for execution in targets:
            execution.replay_cache = None
    try:
        yield cache
    finally:
        for execution, previous in saved:
            execution.replay_cache = previous


@contextmanager
def _deadline_scope(deadline, good, bad):
    """Attach the diagnosis deadline to both executions for one run.

    Every query-time replay they perform then checks the shared budget
    from inside the engine's step loop.  Stand-ins without a
    ``deadline`` attribute are left alone; the previous value is always
    restored.
    """
    targets = [
        execution
        for execution in ([good] if good is bad else [good, bad])
        if hasattr(execution, "deadline")
    ]
    saved = [(execution, execution.deadline) for execution in targets]
    if deadline is not None:
        for execution in targets:
            execution.deadline = deadline
    try:
        yield
    finally:
        for execution, previous in saved:
            execution.deadline = previous


def _probe_minimize_trial(shared, index):
    """Worker-side evaluation of one minimality trial.

    Runs in a forked process (or on a pickled clone inline — see
    :class:`repro.replay.parallel.CandidateEvaluator`), so nothing it
    touches leaks back to the diagnosing process.  The parallel path is
    only taken on non-degraded runs without a fault plan, where
    ``_find_divergence`` is a pure function of the replayed state.
    """
    state, path, good_root, anchor_index, trials = shared
    if state.bad.replay_cache is None:
        # Worker-local snapshot cache: trials landing on the same
        # worker fork from shared prefixes instead of re-deriving.
        state.bad.replay_cache = ReplayCache()
    replayed = state.bad.replay(trials[index], anchor_index)
    anchor_time = state._anchor_time(replayed)
    divergent = state._find_divergence(path, good_root, replayed, anchor_time)
    return divergent is None


class _DiagnosisState:
    """Mutable state of one diagnose() call."""

    def __init__(
        self,
        debugger: DiffProv,
        good: Execution,
        bad: Execution,
        timings,
        telemetry=None,
    ):
        self.debugger = debugger
        self.program = debugger.program
        self.options = debugger.options
        self.good = good
        self.bad = bad
        self.timings = timings
        self.telemetry = telemetry
        self.changes: List[Change] = []
        self.rounds: List[RoundInfo] = []
        self.good_tree_size = 0
        self.bad_tree_size = 0
        self.good_seed: Optional[TupleNode] = None
        self.bad_seed: Optional[TupleNode] = None
        self.equiv: Optional[EquivalenceRelation] = None
        self.replays = 0
        # Degradation machinery (active only under a fault plan or a
        # lossy provenance graph).
        self.fault_plan = self.options.faults
        self.distributed_stats: Dict[str, object] = {}
        self.unknowns: List[Tuple] = []
        self._unknown_set: Set[Tuple] = set()
        self.assumed: Set[Tuple] = set()
        self.partial_verify = False
        self.recovered = False
        self.lost_log_events = 0
        # The ReplayCache attached for this run (None when disabled).
        self.replay_cache = None
        # Resilience machinery (docs/resilience.md).
        self.journal = self.options.journal
        self.deadline = Deadline.of(self.options.deadline)
        self.evaluator_counters: Dict[str, int] = {}
        # Set when the budget ran out inside the (optional) minimize
        # pass — the diagnosis still succeeds with a non-minimal Δ.
        self.deadline_expired_in: Optional[str] = None
        # The queried events, recorded by run(); they namespace journal
        # verdict keys so an autoref sweep (many diagnoses, one
        # journal) never cross-reads another candidate's verdicts.
        self.good_event: Optional[Tuple] = None
        self.bad_event: Optional[Tuple] = None
        # The bad seed's log anchor, recorded by run() for the
        # post-diagnosis rollback planner (repro.repair).
        self.anchor_index: Optional[int] = None

    def __getstate__(self):
        # Shipped to candidate-evaluator workers: telemetry, the
        # parent's snapshot cache, the journal (open file handle), and
        # the deadline (live clock) stay behind.
        state = self.__dict__.copy()
        state["telemetry"] = None
        state["replay_cache"] = None
        state["journal"] = None
        state["deadline"] = None
        return state

    @contextmanager
    def _timed(self, key: str):
        started = _time.perf_counter()
        span = (
            self.telemetry.span("diffprov." + key)
            if self.telemetry is not None
            else nullcontext()
        )
        with span:
            try:
                yield
            finally:
                self.timings[key] = (
                    self.timings.get(key, 0.0) + _time.perf_counter() - started
                )

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self, good_event, bad_event, good_time, bad_time) -> DiagnosisReport:
        self.good_event = good_event
        self.bad_event = bad_event
        self._journal_phase("query")
        self._check_deadline("query")
        with self._timed("query"):
            good_result = self.good.materialize()
            if self.bad is self.good:
                bad_result = good_result
            else:
                bad_result = self.bad.materialize()
            self.lost_log_events = self._lost(good_result)
            if self.bad is not self.good:
                self.lost_log_events += self._lost(bad_result)
            if self.lost_log_events:
                # The persisted provenance is missing vertexes.  The
                # event log is lossless ground truth, so the debugger
                # reconstructs complete graphs by replay (Section 5's
                # query-time mode) and marks the diagnosis degraded:
                # it rests on recovered, not recorded, provenance.
                self.recovered = True
                good_result = self.good.replay()
                self.replays += 1
                if self.bad is self.good:
                    bad_result = good_result
                else:
                    bad_result = self.bad.replay()
                    self.replays += 1
            good_tree = self._query_tree(
                good_result.graph, good_event, good_time, "good"
            )
            bad_tree = self._query_tree(
                bad_result.graph, bad_event, bad_time, "bad"
            )
            self.good_tree_size = good_tree.size()
            self.bad_tree_size = bad_tree.size()

        self._journal_phase("find_seed")
        with self._timed("find_seed"):
            self.good_seed = find_seed(good_tree.tuple_root)
            self.bad_seed = find_seed(bad_tree.tuple_root)
        self._check_seed_recoverable("good", self.good, self.good_seed)
        self._check_seed_recoverable("bad", self.bad, self.bad_seed)
        if (
            self.good_seed.tuple.table != self.bad_seed.tuple.table
            or self.good_seed.tuple.arity != self.bad_seed.tuple.arity
        ):
            raise SeedTypeMismatch(self.good_seed.tuple, self.bad_seed.tuple)

        with self._timed("divergence"):
            annotation = TaintAnnotation(
                self.program,
                good_tree.tuple_root,
                self.good_seed,
                enabled=self.options.enable_taint,
            )
            self.equiv = EquivalenceRelation(annotation, self.bad_seed.tuple)
        # Figure 3: "if s_G ≄ s_B then FAIL".  With taints enabled the
        # seeds are equivalent by definition (identity formulas); with
        # taints disabled literal comparison applies and alignment that
        # preserves s_B is impossible.
        if not self.equiv.tuples_equivalent(self.good_seed, self.bad_seed.tuple):
            raise DiagnosisFailure(
                f"seeds {self.good_seed.tuple} and {self.bad_seed.tuple} are "
                f"not equivalent under the equivalence relation; alignment "
                f"cannot preserve the bad seed"
            )

        path = self.good_seed.path_to_root()
        anchor_index = self.bad.log.index_of_insert(self.bad_seed.tuple)
        self.anchor_index = anchor_index
        replayed = bad_result

        # Rounds that produce changes count against max_rounds; under
        # degradation, rounds that merely *assume* an unverifiable
        # subtree aligned (no replay) are bounded separately so a long
        # lossy path cannot starve the change budget.
        rounds_used = 0
        iterations = 0
        iteration_cap = self.options.max_rounds * 10
        self._journal_phase("rounds")
        while rounds_used < self.options.max_rounds:
            iterations += 1
            if iterations > iteration_cap:
                break
            self._check_deadline("rounds")
            anchor_time = self._anchor_time(replayed)
            with self._timed("divergence"):
                divergent = self._find_divergence(
                    path, good_tree.tuple_root, replayed, anchor_time
                )
            if divergent is None:
                if self.options.minimize and self.changes:
                    self._journal_phase("minimize")
                    try:
                        self._minimize(path, good_tree.tuple_root,
                                       anchor_index)
                    except DeadlineExceeded:
                        # Out of budget mid-minimization: the change
                        # set is already a verified (if non-minimal)
                        # diagnosis, so report it rather than failing.
                        self.deadline_expired_in = "minimize"
                return self._success_report(anchor_index)
            with self._timed("make_appear"):
                new_changes: List[Change] = []
                self._make_appear(divergent, replayed, anchor_time, new_changes)
            if not new_changes and self._degradable(replayed):
                # Nothing to change, but the missing tuple may be an
                # artifact of lost provenance rather than a genuine
                # divergence: assume it aligned, mark it UNKNOWN, and
                # keep walking toward the root.
                expected = self.equiv.expected_tuple(divergent)
                if expected not in self.assumed:
                    self.assumed.add(expected)
                    self._note_unknown(expected)
                    continue
            rounds_used += 1
            self.rounds.append(
                RoundInfo(
                    rounds_used,
                    divergent.tuple,
                    self.equiv.expected_tuple(divergent),
                    new_changes,
                )
            )
            if self.journal is not None:
                self.journal.round(rounds_used, new_changes)
            if not new_changes:
                raise DiagnosisFailure(
                    f"no further changes found, but trees still diverge at "
                    f"{divergent.tuple} (expected "
                    f"{self.equiv.expected_tuple(divergent)}); the system may "
                    f"be non-deterministic at this point"
                )
            with self._timed("replay"):
                replayed = self.bad.replay(self.changes, anchor_index)
                self.replays += 1
        return self.failure_report(None)

    # ------------------------------------------------------------------
    # Fault awareness / graceful degradation.
    # ------------------------------------------------------------------

    def _query_tree(self, graph, event, time, side):
        """Initial provenance query over the partitioned store.

        Every query goes through :class:`PartitionedProvenance`, so the
        distribution accounting (vertexes fetched, nodes contacted) in
        ``self.distributed_stats[side]`` is populated on healthy runs
        too, not just degraded ones.  Under a fault plan the fetches
        become fallible, and failures that would be uncaught crashes
        (root unreachable, event lost from the log) become typed
        diagnosis failures instead.
        """
        telemetry = self.telemetry
        faults = (
            FaultInjector(self.fault_plan, f"fetch-{side}")
            if self.fault_plan is not None
            else None
        )
        partitioned = PartitionedProvenance(
            graph, faults=faults, telemetry=telemetry,
            deadline=self.deadline,
        )
        span = (
            telemetry.span("provenance.query", side=side, event=str(event))
            if telemetry is not None
            else nullcontext()
        )
        with span:
            if faults is None:
                tree, stats = partitioned.query(event, time)
            else:
                try:
                    tree, stats = partitioned.query(event, time)
                except DeadlineExceeded:
                    # Budget expiry is not a fault outcome — let it
                    # reach the partial-report handler untranslated.
                    raise
                except (FaultError, ReproError) as exc:
                    raise DiagnosisFailure(
                        f"{side} provenance could not be materialized under "
                        f"faults: {exc}"
                    )
        self.distributed_stats[side] = stats
        if telemetry is not None:
            telemetry.fold_counters(
                f"distributed.{side}",
                {
                    "vertices_fetched": stats.vertices_fetched,
                    "cross_node_fetches": stats.cross_node_fetches,
                    "nodes_contacted": len(stats.nodes_contacted),
                    "timeouts": stats.timeouts,
                    "retries": stats.retries,
                    "failed_fetches": stats.failed_fetches,
                },
            )
            if faults is not None:
                faults.fold_into(telemetry)
        if stats.degraded:
            self.partial_verify = True
            for parent, child in stats.missing_subtrees:
                self._note_unknown(child)
        return tree

    def _check_seed_recoverable(self, side, execution, seed) -> None:
        """Reject seeds that are artifacts of a truncated tree.

        When a query lost subtrees to unreachable partitions, the
        deepest surviving node may be a *derived* tuple rather than the
        true external stimulus.  Aligning against it would predict
        nonsense (and a candidate change built from it can even send
        the replayed system into a loop), so the diagnosis fails with a
        typed report instead.
        """
        stats = self.distributed_stats.get(side)
        if stats is None or not getattr(stats, "degraded", False):
            return
        if execution.log.index_of_insert(seed.tuple) is None:
            raise DiagnosisFailure(
                f"the {side} provenance tree is truncated at an "
                f"unreachable partition and its external stimulus could "
                f"not be recovered ({seed.tuple} is not a logged base "
                f"event); restore connectivity or choose a reference "
                f"observed on a reachable path"
            )

    def _degradable(self, replayed) -> bool:
        """Whether missing provenance may be loss rather than truth.

        Keyed on *observed* loss — a lossy recorder or failed fetches —
        not on mere fault-plan presence, so a zero plan changes nothing
        (the zero-overhead-in-behaviour guarantee).
        """
        return self._lossy(replayed) or any(
            getattr(stats, "degraded", False)
            for stats in self.distributed_stats.values()
        )

    @staticmethod
    def _lossy(replayed) -> bool:
        recorder = getattr(replayed, "recorder", None)
        return bool(getattr(recorder, "lost_events", 0))

    @staticmethod
    def _lost(result) -> int:
        recorder = getattr(result, "recorder", None)
        return int(getattr(recorder, "lost_events", 0) or 0)

    def _note_unknown(self, expected: Tuple) -> None:
        if expected not in self._unknown_set:
            self._unknown_set.add(expected)
            self.unknowns.append(expected)

    def _ground_truth_alive(self, expected: Tuple, replayed) -> bool:
        """Check a tuple against lossless ground truth.

        The provenance graph is what lossy logging corrupts; the engine
        store (state tuples) and the event log (base events) are not.
        Returns True only on positive confirmation — a miss here never
        proves absence (the tuple may be a derived event neither source
        tracks), so callers treat False as "unknown" and fall through
        to the normal divergence handling.
        """
        schema = self.program.schemas.get(expected.table)
        if schema is not None and schema.kind == TableKind.EVENT:
            return self.bad.log.index_of_insert(expected) is not None
        try:
            record = replayed.engine.store.record(expected)
        except Exception:
            return False
        if record is None:
            return False
        return bool(getattr(record, "alive", True))

    def _minimize(self, path, good_root, anchor_index) -> None:
        """Greedy minimality post-pass (Section 4.9).

        For each accumulated change, first try dropping it entirely;
        failing that, try narrowing a modification to its insertion
        (competitor removals are proposed from the atom pattern alone,
        so a rule condition may already exclude the competitor at
        runtime, making its removal unnecessary).  A candidate is kept
        only if the trees stop aligning without it.

        With ``options.workers > 1`` the candidate trials are evaluated
        speculatively on a process pool, wave by wave; results are
        consumed in the serial order and re-derived after every commit,
        so the surviving change set (and the replay count) is identical
        to the serial pass.  Degraded runs stay serial — there,
        divergence checks mutate diagnosis state and order matters.
        """
        pending = list(self.changes)
        position = 0
        if (
            self.options.workers > 1
            and len(pending) > 1
            and (self.fault_plan is None or self.fault_plan.host_only())
            and not self._degraded()
            and not (self.journal is not None and self.journal.has_verdicts)
        ):
            # Host-only fault plans (worker-crash, snapshot-corrupt)
            # keep replays deterministic, so the parallel pass stays
            # correct — and is exactly what exercises the evaluator's
            # self-healing.  A resumed journal forces the serial path:
            # recorded verdicts are consumed in their recorded order.
            position = self._minimize_parallel(
                path, good_root, anchor_index, pending
            )
        for change in pending[position:]:
            self._check_deadline("minimize")
            for trial in self._alternatives(change):
                if self._aligned_with(trial, path, good_root, anchor_index):
                    self.changes = trial
                    break

    def _alternatives(self, change) -> List[List[Change]]:
        alternatives = [[c for c in self.changes if c is not change]]
        if change.is_modification:
            narrowed = Change(insert=change.insert, reason=change.reason)
            alternatives.append(
                [narrowed if c is change else c for c in self.changes]
            )
        return alternatives

    def _minimize_parallel(
        self, path, good_root, anchor_index, pending
    ) -> int:
        """Wave-based speculative evaluation of minimality trials.

        Every remaining change's trials are evaluated concurrently
        against the current change set; the results are then consumed
        in serial order.  The first commit invalidates the rest of the
        wave (their trials were built against a stale change set), so
        the next wave re-derives them — byte-identical outcomes at the
        price of some discarded speculative work.  Returns how many of
        ``pending`` were fully processed; the serial pass finishes the
        rest (non-zero only when the context cannot be pickled).
        """
        faults = (
            FaultInjector(self.fault_plan, "evaluator")
            if self.fault_plan is not None
            else None
        )
        evaluator = CandidateEvaluator(
            self.options.workers,
            self.telemetry,
            policy=self.options.resilience,
            faults=faults,
        )
        position = 0
        try:
            while position < len(pending):
                self._check_deadline("minimize")
                wave = [
                    (change, self._alternatives(change))
                    for change in pending[position:]
                ]
                trials = [
                    trial for _, alternatives in wave for trial in alternatives
                ]
                shared = (self, path, good_root, anchor_index, trials)
                with self._timed("minimize"):
                    results = evaluator.evaluate(
                        _probe_minimize_trial, shared, len(trials)
                    )
                if results is None:
                    # Context not picklable (e.g. an execution stand-in);
                    # the serial pass picks up from here.
                    return position
                cursor = 0
                committed = False
                for change, alternatives in wave:
                    outcomes = results[cursor : cursor + len(alternatives)]
                    cursor += len(alternatives)
                    position += 1
                    chosen = None
                    for trial, (status, value) in zip(alternatives, outcomes):
                        # Mirror the serial accounting: one replay per
                        # trial actually consumed, stopping at the first
                        # success.
                        self.replays += 1
                        if status == "err":
                            raise value
                        if self.journal is not None:
                            self.journal.record(
                                "minimize",
                                self._minimize_key(trial, anchor_index),
                                bool(value),
                            )
                        if value:
                            chosen = trial
                            break
                    if chosen is not None:
                        self.changes = chosen
                        committed = True
                        break
                if not committed:
                    break
            return len(pending)
        finally:
            self._absorb_evaluator(evaluator)

    def _aligned_with(self, trial, path, good_root, anchor_index) -> bool:
        key = None
        if self.journal is not None and self._verdicts_safe():
            key = self._minimize_key(trial, anchor_index)
            cached = self.journal.lookup("minimize", key)
            if cached is not None:
                # Resume fast path: the verdict replaces exactly one
                # replay, so mirror the serial accounting — replay
                # counts are part of the canonical report.
                self.replays += 1
                return bool(cached)
        with self._timed("replay"):
            replayed = self.bad.replay(trial, anchor_index)
            self.replays += 1
        anchor_time = self._anchor_time(replayed)
        with self._timed("minimize"):
            divergent = self._find_divergence(
                path, good_root, replayed, anchor_time
            )
        if key is not None:
            self.journal.record("minimize", key, divergent is None)
        return divergent is None

    def _minimize_key(self, trial, anchor_index) -> str:
        return (
            f"{self.good_event}~{self.bad_event}"
            f"{_trial_key(trial, anchor_index)}"
        )

    def _verdicts_safe(self) -> bool:
        """Whether minimize verdicts may be journalled/replayed.

        Under observed degradation the divergence check *mutates*
        diagnosis state (UNKNOWN notes, partial-verify flags), so a
        skipped replay would change the report; degraded resumes
        recompute every trial instead (still byte-identical — the
        computation is deterministic).  Host-only fault plans are safe:
        they never touch replay semantics.
        """
        return (
            self.fault_plan is None or self.fault_plan.host_only()
        ) and not self._degraded()

    # ------------------------------------------------------------------
    # Resilience plumbing (docs/resilience.md).
    # ------------------------------------------------------------------

    def _journal_phase(self, name: str) -> None:
        if self.journal is not None:
            self.journal.phase(name)

    def _check_deadline(self, phase: str) -> None:
        if self.deadline is not None:
            self.deadline.check(phase)

    def _absorb_evaluator(self, evaluator) -> None:
        for name, value in evaluator.counters().items():
            if value:
                self.evaluator_counters[name] = (
                    self.evaluator_counters.get(name, 0) + value
                )

    def resilience_section(self) -> Optional[Dict[str, object]]:
        """The report's ``resilience`` section (None when inactive).

        Describes *how* the run survived, never what it concluded —
        excluded from the canonical report so resumed/degraded runs
        stay byte-comparable on their conclusions.
        """
        section: Dict[str, object] = {}
        if self.journal is not None:
            section["journal"] = {
                "path": self.journal.path,
                "resumed": self.journal.resumed,
                "skipped_candidates": self.journal.skipped,
                "entries_written": self.journal.writes,
            }
        if self.evaluator_counters:
            section["evaluator"] = dict(self.evaluator_counters)
        if self.replay_cache is not None and self.replay_cache.corrupt:
            section["cache"] = {"corrupt": self.replay_cache.corrupt}
        if self.deadline is not None:
            expired = self.deadline.expired or (
                self.deadline_expired_in is not None
            )
            section["deadline"] = {
                "seconds": self.deadline.seconds,
                "expired": expired,
                "slack_s": round(self.deadline.timeout(), 3),
            }
            if self.deadline_expired_in is not None:
                section["deadline"]["expired_in"] = self.deadline_expired_in
        return section or None

    def journal_result(self, report) -> None:
        """Record the finished diagnosis in the journal (commit marker)."""
        if self.journal is None or self.journal.closed:
            return
        sha = _hashlib.sha256(
            report.canonical_json().encode("utf-8")
        ).hexdigest()
        self.journal.result(report.success, sha,
                            category=report.failure_category)

    # ------------------------------------------------------------------
    # Rollback planning (repro.repair, docs/repair.md).
    # ------------------------------------------------------------------

    def maybe_repair(self, report) -> None:
        """Attach ranked, replay-verified rollback plans to the report.

        Runs only after a *successful* diagnosis with ``repair=True``.
        A degraded diagnosis (recovered provenance, UNKNOWN subtrees)
        yields a skipped section — its Δ is not trustworthy enough to
        plan fixes from.  Deadline expiry mid-planning degrades to
        "diagnosis only": the diagnosis itself still succeeds, with a
        repair section that says why it is empty.
        """
        if not self.options.repair or not report.success:
            return
        self._journal_phase("repair")
        if report.degraded:
            report.repair = {
                "status": "skipped-degraded",
                "probes": 0,
                "replays": 0,
                "plans": [],
                "rejected": [],
            }
            return
        # Imported lazily: repro.repair imports replay machinery that
        # in turn imports this module.
        from ..repair import RollbackPlanner

        planner = RollbackPlanner(
            self.program,
            self.bad,
            good_event=self.good_event,
            bad_event=self.bad_event,
            changes=report.changes,
            anchor_index=self.anchor_index,
            workers=self.options.workers,
            fault_plan=self.fault_plan,
            journal=self.journal,
            deadline=self.deadline,
            telemetry=self.telemetry,
            resilience=self.options.resilience,
        )
        try:
            with self._timed("repair"):
                report.repair = planner.plan()
        except DeadlineExceeded:
            self.deadline_expired_in = "repair"
            report.repair = {
                "status": "deadline-exceeded",
                "probes": 0,
                "replays": planner.replays,
                "plans": [],
                "rejected": [],
            }
        finally:
            for name, value in planner.evaluator_counters.items():
                if value:
                    self.evaluator_counters[name] = (
                        self.evaluator_counters.get(name, 0) + value
                    )
        if self.telemetry is not None:
            section = report.repair
            self.telemetry.fold_counters(
                "repair",
                {
                    "plans_verified": len(section.get("plans", ())),
                    "plans_rejected": len(section.get("rejected", ())),
                    "replays": section.get("replays", 0),
                },
            )

    # ------------------------------------------------------------------
    # FIRSTDIV: walking the seed→root branch.
    # ------------------------------------------------------------------

    def _anchor_time(self, replayed: ReplayResult) -> int:
        appears = replayed.graph.appear_times(self.bad_seed.tuple)
        if not appears:
            return 0
        return min(appears)

    def _find_divergence(
        self,
        path: Sequence[TupleNode],
        good_root: TupleNode,
        replayed: ReplayResult,
        anchor_time: int,
    ) -> Optional[TupleNode]:
        for node in path:
            if not self._expected_alive(node, replayed, anchor_time):
                return node
        # The whole stimulus branch is reproduced; verify the full trees.
        expected_root = self.equiv.expected_tuple(good_root)
        if not replayed.graph.ever_existed(expected_root):
            if self._degradable(replayed) and (
                expected_root in self.assumed
                or self._ground_truth_alive(expected_root, replayed)
            ):
                # The root's provenance was lost but ground truth (or an
                # explicit assumption) says it exists; alignment holds
                # as far as the surviving evidence shows.
                self.partial_verify = True
                self._note_unknown(expected_root)
                return None
            return good_root
        if self._lossy(replayed):
            # A deep tree comparison against a lossy graph reports
            # spurious divergences for every lost subtree; stop at the
            # verified stimulus branch and mark the result degraded.
            self.partial_verify = True
            return None
        bad_root = provenance_query(replayed.graph, expected_root).tuple_root
        return self.equiv.first_divergence(good_root, bad_root)

    # ------------------------------------------------------------------
    # MAKEAPPEAR (Section 4.5).
    # ------------------------------------------------------------------

    def _make_appear(
        self,
        node: TupleNode,
        replayed: ReplayResult,
        anchor_time: int,
        new_changes: List[Change],
        parent_env: Optional[Dict[str, object]] = None,
    ) -> None:
        if self._expected_alive(node, replayed, anchor_time):
            return
        if node.is_base:
            self._change_base(node, replayed, new_changes, parent_env)
            return
        rule = self._rule_of(node)
        env = None
        if rule is not None and not rule.is_aggregate:
            env = self._bad_side_env(rule, node)
            if self.options.enable_repair:
                self._repair_conditions(rule, node, env)
            # Section 4.5: propagate the parent's taints down to the
            # other children.  A sibling base tuple can share a tainted
            # variable with the head (e.g. the replica name joining a
            # query to its zone-transfer state), so its expected
            # counterpart must be computed from the bad-side binding,
            # not taken literally from the good tree.
            self._propagate_to_children(rule, node, env)
        for child in node.children:
            self._make_appear(child, replayed, anchor_time, new_changes, env)
        if rule is not None and not rule.is_aggregate:
            self._remove_blockers(rule, node, replayed, new_changes)

    def _expected_alive(
        self, node: TupleNode, replayed: ReplayResult, anchor_time: int
    ) -> bool:
        """Whether a node's expected counterpart exists when needed.

        Base (state) tuples must exist *at* the moment the stimulus
        enters the system — a flapping entry that was withdrawn before
        the bad event but re-announced later counts as missing
        (Section 4.8's "as of" semantics).  Derived tuples come into
        being after the stimulus, so any interval from the anchor on
        qualifies.
        """
        expected = self.equiv.expected_tuple(node)
        if node.is_base:
            schema = self.program.schemas.get(expected.table)
            if schema is not None and schema.kind == TableKind.EVENT:
                # Base events (the seed itself) are instants, not
                # intervals; anything from the anchor on qualifies.
                alive = replayed.graph.alive_during(expected, anchor_time)
            else:
                alive = replayed.graph.alive_at(expected, anchor_time)
        else:
            alive = replayed.graph.alive_during(expected, anchor_time)
        if alive:
            return True
        if self._degradable(replayed):
            # The graph says "missing", but under lossy logging that
            # may be a hole rather than the truth.  Accept previously
            # assumed subtrees, then consult lossless ground truth
            # (event log / engine store); only a positive confirmation
            # suppresses the divergence.
            if expected in self.assumed:
                return True
            if self._ground_truth_alive(expected, replayed):
                self.partial_verify = True
                self._note_unknown(expected)
                return True
        return False

    def _propagate_to_children(
        self, rule: Rule, node: TupleNode, env: Dict[str, object]
    ) -> None:
        """Record overrides for children whose expected tuples change
        under the bad-side binding (PROPTAINT downward + APPLYTAINT)."""
        for atom, child in zip(rule.body, node.children):
            expected = self._instantiate_atom(atom, env)
            if expected is None:
                continue
            if expected != self.equiv.expected_tuple(child):
                self.equiv.add_override(child.tuple, expected)

    def _instantiate_atom(self, atom, env: Dict[str, object]) -> Optional[Tuple]:
        args = []
        for arg in atom.args:
            try:
                value = arg.evaluate(env)
            except EvaluationError:
                return None
            args.append(value)
        return Tuple(atom.table, args)

    def _change_base(
        self,
        node: TupleNode,
        replayed: ReplayResult,
        new_changes: List[Change],
        parent_env: Optional[Dict[str, object]] = None,
    ) -> None:
        expected = self.equiv.expected_tuple(node)
        if not self._base_mutable(node, expected):
            raise ImmutableChangeRequired(
                expected,
                reason=f"counterpart of {node.tuple} in the good tree",
            )
        competitors = self._competitors(node, replayed, expected, parent_env)
        change = Change(
            insert=expected,
            remove=competitors,
            reason=(
                f"missing base tuple: the good tree derives through "
                f"{node.tuple}, whose counterpart {expected} does not exist "
                f"in the bad execution"
            ),
        )
        self._add_change(change, new_changes)

    def _base_mutable(self, node: TupleNode, expected: Tuple) -> bool:
        if node.mutable is not None:
            return node.mutable
        schema = self.program.schemas.get(expected.table)
        return schema.mutable if schema is not None else True

    def _add_change(self, change: Change, new_changes: List[Change]) -> None:
        if change in self.changes:
            return
        self.changes.append(change)
        new_changes.append(change)

    # -- competitor removal ---------------------------------------------------

    def _competitors(
        self,
        node: TupleNode,
        replayed: ReplayResult,
        expected: Tuple,
        parent_env: Optional[Dict[str, object]] = None,
    ) -> tuple:
        """Existing bad-side base tuples occupying the same rule slot.

        When the rule's body atom is functional (no argmax selector and
        the slot is anchored by other bindings), a conflicting tuple
        must be removed along with the insertion — e.g. replacing the
        wrong ``mapreduce.job.reduces`` value rather than having two.
        """
        parent = node.parent
        if parent is None or parent.derivation is None:
            return ()
        rule = self._rule_of(parent)
        if rule is None or rule.is_aggregate:
            return ()
        try:
            index = parent.children.index(node)
        except ValueError:
            return ()
        if index >= len(rule.body):
            return ()
        atom = rule.body[index]
        if atom.selector is not None:
            return ()
        # Anchor the slot.  Two kinds of variables identify *which*
        # tuple the slot holds and are pinned to their bad-side values:
        # join variables (shared with other body atoms) and head
        # variables the equivalence mapping rewrote (seed identity,
        # e.g. the replica name) — another replica's state must never
        # be mistaken for a competitor.  Variables whose value is the
        # same in both runs are the slot's payload — the config value,
        # the code version — and stay free, so the wrong occupant is
        # found and replaced.
        shared = set()
        for other_index, other_atom in enumerate(rule.body):
            if other_index != index:
                shared |= other_atom.variables()
        good_env = parent.derivation.env if parent.derivation else {}
        env: Dict[str, object] = {}
        if parent_env is not None:
            for name in atom.variables():
                if name not in parent_env:
                    continue
                rewritten = (
                    name in good_env and good_env[name] != parent_env[name]
                )
                if name in shared or rewritten:
                    env[name] = parent_env[name]
        for sibling_index, (sibling_atom, sibling) in enumerate(
            zip(rule.body, parent.children)
        ):
            if sibling_index == index:
                continue
            match_atom(sibling_atom, self.equiv.expected_tuple(sibling), env)
        competitors = []
        store = replayed.engine.store
        for candidate in _candidate_tuples(store, atom, env):
            record = store.record(candidate)
            if record is None or not record.is_base:
                continue
            if candidate == expected:
                continue
            candidate_env = dict(env)
            if match_atom(atom, candidate, candidate_env):
                competitors.append(candidate)
        if len(competitors) > self.options.max_competitors:
            # Too many matches: the slot is not functional; removing
            # them would change unrelated behaviour.
            return ()
        immutable = [
            c for c in competitors if not replayed.engine.is_mutable(c)
        ]
        if immutable:
            return ()
        return tuple(competitors)

    # -- condition repair -------------------------------------------------------

    def _rule_of(self, node: TupleNode) -> Optional[Rule]:
        if node.rule is None:
            return None
        try:
            return self.program.rule(node.rule)
        except Exception:
            return None

    def _bad_side_env(self, rule: Rule, node: TupleNode) -> Dict[str, object]:
        """The rule binding as it must look in the bad execution.

        Tainted variables evaluate their formulas under the bad seed;
        untainted ones keep the good run's values.  The binding is then
        unified with the node's *expected* head tuple, so that taints
        propagated down from an ancestor (or repairs recorded as
        overrides) reach this rule's variables too — without this, a
        sibling base tuple two levels below the divergence would still
        be predicted with the good run's literal values.
        """
        env_good = node.derivation.env if node.derivation is not None else {}
        var_formulas = self.equiv.annotation.var_formulas_for(node)
        env: Dict[str, object] = {}
        for name, value in env_good.items():
            formula = var_formulas.get(name)
            if formula is None:
                env[name] = value
            else:
                env[name] = formula.evaluate(self.equiv.seed_env)
        expected_head = self.equiv.expected_tuple(node)
        for arg, value in zip(rule.head.args, expected_head.args):
            if isinstance(arg, Var):
                env[arg.name] = value
        return env

    def _repair_conditions(
        self, rule: Rule, node: TupleNode, env: Dict[str, object]
    ) -> None:
        repairable = self._repairable_vars(rule, node)
        for condition in rule.conditions:
            try:
                ok = condition.holds(env)
            except EvaluationError:
                ok = False
            if ok:
                continue
            result = repair_condition(
                condition, env, set(repairable), self.options.enable_inversion
            )
            if result is None:
                raise NonInvertibleError(
                    f"condition {condition} fails in the bad execution and "
                    f"offers no mutable field to repair",
                    attempted=(condition, dict(env)),
                )
            variable, value = result
            # Register the repair as a field rewrite on every child
            # slot the variable binds: all tuples carrying the old
            # value there (e.g. every flow entry compiled from the
            # repaired policy) are expected with the new one.  The
            # caller's downward propagation then instantiates this
            # node's own children from the updated binding.
            old_value = env.get(variable)
            for child, field_index in repairable.get(variable, ()):
                self.equiv.add_field_rewrite(
                    child.tuple.table, field_index, old_value, value
                )
            env[variable] = value

    def _repairable_vars(self, rule: Rule, node: TupleNode):
        """Variables bound to fields of changeable, untainted children.

        Mutable base children can be changed directly; *derived*
        children qualify too — repairing their field produces an
        expected tuple whose own MAKEAPPEAR recursion pushes the change
        down to the mutable base tuples it derives from (e.g. a flow
        entry computed by the controller: the repair lands on the
        policy).  Immutable base children are off limits.
        """
        var_formulas = self.equiv.annotation.var_formulas_for(node)
        result: Dict[str, List] = {}
        for atom, child in zip(rule.body, node.children):
            if child.is_base and not self._base_mutable(child, child.tuple):
                continue
            for index, arg in enumerate(atom.args):
                if isinstance(arg, Var) and arg.name not in var_formulas:
                    result.setdefault(arg.name, []).append((child, index))
        return result

    # -- selector blockers ----------------------------------------------------

    def _remove_blockers(
        self,
        rule: Rule,
        node: TupleNode,
        replayed: ReplayResult,
        new_changes: List[Change],
    ) -> None:
        """Ensure argmax selectors would pick the expected tuples.

        In the bad execution a competing tuple (e.g. an overlapping
        higher-priority flow entry) may win the best-match selection
        and hijack the derivation; such blockers are removed if mutable.
        """
        for index, atom in enumerate(rule.body):
            if atom.selector is None or index >= len(node.children):
                continue
            expected_child = self.equiv.expected_tuple(node.children[index])
            env_anchor: Dict[str, object] = {}
            for sibling_index, (sibling_atom, sibling) in enumerate(
                zip(rule.body, node.children)
            ):
                if sibling_index == index:
                    continue
                match_atom(
                    sibling_atom, self.equiv.expected_tuple(sibling), env_anchor
                )
            excluded: Set[Tuple] = set()
            for change in self.changes:
                excluded.update(change.remove)
            while True:
                winner = self._select_winner(
                    atom, rule, env_anchor, expected_child, replayed, excluded
                )
                if winner is None or winner == expected_child:
                    break
                removals = self._blocker_removals(winner, replayed)
                if removals is None:
                    raise ImmutableChangeRequired(
                        winner,
                        reason=(
                            f"it wins the {atom.selector} selection over the "
                            f"expected {expected_child}"
                        ),
                    )
                change = Change(
                    remove=removals,
                    reason=(
                        f"{winner} wins the best-match selection in rule "
                        f"{rule.name!r} and diverts the derivation away from "
                        f"{expected_child}"
                    ),
                )
                self._add_change(change, new_changes)
                excluded.add(winner)

    def _blocker_removals(self, winner: Tuple, replayed: ReplayResult):
        """Base-tuple removals that make a blocking tuple disappear.

        A blocker that is itself derived (a flow entry computed by the
        controller) cannot be removed directly — replay would simply
        re-derive it.  Instead its derivation is traced to the mutable
        base tuples it rests on (the policy).  Returns None when the
        blocker is pinned by immutable state only.
        """
        store = replayed.engine.store
        record = store.record(winner)
        if record is not None and record.is_base:
            if not replayed.engine.is_mutable(winner):
                return None
            return [winner]
        # Find a derivation of the winner and pull out its mutable
        # base supports, recursing through derived members.
        derivations = [
            info
            for info in replayed.graph.derivations.values()
            if info.head == winner
        ]
        if not derivations:
            return None
        removals: List[Tuple] = []
        for member in derivations[0].body:
            member_record = store.record(member)
            if member_record is None or not member_record.is_base:
                continue
            if replayed.engine.is_mutable(member):
                removals.append(member)
        return removals or None

    def _select_winner(
        self,
        atom,
        rule: Rule,
        env_anchor: Dict[str, object],
        expected_child: Tuple,
        replayed: ReplayResult,
        excluded: Set[Tuple],
    ) -> Optional[Tuple]:
        candidates = list(
            _candidate_tuples(replayed.engine.store, atom, env_anchor)
        )
        if expected_child not in candidates:
            candidates.append(expected_child)
        best = None
        best_key = None
        for candidate in candidates:
            if candidate in excluded:
                continue
            env = dict(env_anchor)
            if not match_atom(atom, candidate, env):
                continue
            if not self._conditions_hold(rule, env):
                continue
            try:
                key = tuple(k.evaluate(env) for k in atom.selector.keys)
            except EvaluationError:
                continue
            ranked = (key, _stable_key(candidate))
            if best_key is None or ranked > best_key:
                best_key = ranked
                best = candidate
        return best

    def _conditions_hold(self, rule: Rule, env: Dict[str, object]) -> bool:
        for condition in rule.conditions:
            if condition.variables() - env.keys():
                continue
            try:
                if not condition.holds(env):
                    return False
            except EvaluationError:
                return False
        return True

    # ------------------------------------------------------------------
    # Reports.
    # ------------------------------------------------------------------

    def fold_metrics(self) -> None:
        """Final deterministic counts for the diagnosis snapshot.

        Only counts go into the registry — never wall time — so two
        runs with the same seed produce byte-identical snapshots.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return
        telemetry.set_gauge("diffprov.good_tree_size", self.good_tree_size)
        telemetry.set_gauge("diffprov.bad_tree_size", self.bad_tree_size)
        telemetry.inc("diffprov.rounds", len(self.rounds))
        telemetry.inc("diffprov.replays", self.replays)
        telemetry.inc("diffprov.changes", len(self.changes))
        if self.unknowns:
            telemetry.inc("diffprov.unknown_subtrees", len(self.unknowns))
        if self.lost_log_events:
            telemetry.inc("recorder.lost_log_events", self.lost_log_events)
        if self.replay_cache is not None:
            self.replay_cache.fold_into(telemetry)
        if self.journal is not None:
            telemetry.set_gauge("journal.writes", self.journal.writes)
            telemetry.set_gauge("journal.skipped", self.journal.skipped)
        for name, value in sorted(self.evaluator_counters.items()):
            telemetry.set_gauge(f"parallel.{name}_total", value)
        telemetry.set_gauge("log.good_bytes", self.good.log.total_bytes)
        telemetry.set_gauge("log.good_entries", len(self.good.log))
        telemetry.set_gauge("log.bad_bytes", self.bad.log.total_bytes)
        telemetry.set_gauge("log.bad_entries", len(self.bad.log))

    def _degraded(self) -> bool:
        return bool(
            self.recovered
            or self.partial_verify
            or self.unknowns
            or self.assumed
            or any(
                getattr(stats, "degraded", False)
                for stats in self.distributed_stats.values()
            )
        )

    def _confidences(self, success: bool) -> Optional[List[str]]:
        """Per-change confidence levels; None when faults never applied.

        Host-only plans (worker-crash, snapshot-corrupt) don't count as
        faults *of the diagnosed network*: the evaluator and cache heal
        them completely, so the report stays byte-identical to a
        fault-free run (docs/resilience.md).
        """
        network_faults = (
            self.fault_plan is not None and not self.fault_plan.host_only()
        )
        if not network_faults and not self._degraded():
            return None
        if success:
            level = "likely" if self._degraded() else "confirmed"
        else:
            level = "uncertain"
        return [level] * len(self.changes)

    def _success_report(self, anchor_index) -> DiagnosisReport:
        # Success is only declared after _find_divergence found the full
        # trees equivalent on a replay that already incorporated every
        # accumulated change — i.e. the diagnosis is verified by
        # construction whenever the verify option is on.  Under
        # degradation the verification is only partial: the stimulus
        # branch was walked, but UNKNOWN subtrees were taken on trust.
        degraded = self._degraded()
        verified = self.options.verify and not self.partial_verify
        return DiagnosisReport(
            success=True,
            changes=self.changes,
            rounds=self.rounds,
            failure=None,
            timings=self.timings,
            good_tree_size=self.good_tree_size,
            bad_tree_size=self.bad_tree_size,
            good_seed=self.good_seed.tuple if self.good_seed else None,
            bad_seed=self.bad_seed.tuple if self.bad_seed else None,
            replays=self.replays,
            verified=verified,
            degraded=degraded,
            confidences=self._confidences(success=True),
            unknown_subtrees=self.unknowns,
            distributed_stats=self.distributed_stats,
            lost_events=self.lost_log_events,
        )

    def failure_report(self, failure: Optional[Exception]) -> DiagnosisReport:
        return DiagnosisReport(
            success=False,
            changes=self.changes,
            rounds=self.rounds,
            failure=failure,
            timings=self.timings,
            good_tree_size=self.good_tree_size,
            bad_tree_size=self.bad_tree_size,
            good_seed=self.good_seed.tuple if self.good_seed else None,
            bad_seed=self.bad_seed.tuple if self.bad_seed else None,
            replays=self.replays,
            degraded=self._degraded(),
            confidences=self._confidences(success=False),
            unknown_subtrees=self.unknowns,
            distributed_stats=self.distributed_stats,
            lost_events=self.lost_log_events,
        )


def _candidate_tuples(store, atom, env: Dict[str, object]):
    """Live candidates for ``atom``, narrowed by one pinned position.

    A position whose value is statically known — a ``Const`` argument,
    or a ``Var`` already bound in ``env`` — lets the store's equality
    projection answer in O(bucket) instead of a full sorted scan; on
    the full-scale Stanford configuration (757k forwarding entries)
    that is the difference between milliseconds and minutes per
    candidate search.  Any matching tuple necessarily carries the
    pinned value at that position, and both the projection bucket and
    the full scan iterate in ``sort_key`` order, so callers see exactly
    the sequence the scan would have produced after filtering.
    """
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Const):
            return store.tuples_matching(atom.table, position, arg.value)
        if isinstance(arg, Var) and arg.name in env:
            return store.tuples_matching(atom.table, position, env[arg.name])
    return store.tuples(atom.table)


def _stable_key(tup: Tuple):
    return tuple((type(a).__name__, str(a)) for a in tup.args)


def _trial_key(trial, anchor_index) -> str:
    """Deterministic journal key for one minimality trial.

    Built from the canonical change descriptions and the anchor — the
    exact inputs of the replayed candidate — so an uninterrupted run
    and a resumed run key the same trial identically.
    """
    parts = [change.describe() for change in trial]
    return f"@{anchor_index}|" + "|".join(parts)
