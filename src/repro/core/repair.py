"""Repairing rule conditions that fail under the bad-side binding.

When MAKEAPPEAR finds that the rule which derived a good-tree tuple
cannot fire in the bad execution because a condition fails — e.g. the
packet's destination is outside the flow entry's (overly specific)
prefix — DiffProv must compute a changed value for a field of a
mutable base tuple that makes the condition hold.  Two mechanisms:

- **registered repairs** for boolean builtins (``ip_in_prefix`` widens
  the prefix minimally so it covers the address — which is exactly how
  the 4.3.2.0/24 → 4.3.2.0/23 root cause of the paper's running
  example is reconstructed);

- **inversion** for arithmetic comparisons, using
  :func:`repro.datalog.expr.invert` (Section 4.5's ``q = x + 2``
  example).  Rules whose computations cannot be inverted make DiffProv
  fail with the *attempted change* as a clue (Section 4.7).

This module is **condition repair** — *value synthesis* — and runs
inside the DiffProv loop to build the change set Δ(B→G).  It answers
"what should this tuple say instead?", one field at a time.  The
complementary question — *which* base tuples/config entries to revert,
to what, and in what order, verified so the fix clears the symptom
without breaking good behaviour — is **rollback planning**, and lives
in :mod:`repro.repair` (docs/repair.md), which consumes the values
synthesized here via the diagnosis's change set.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple as PyTuple

from ..addresses import IPv4Address, Prefix
from ..datalog.expr import Call, Const, Var, invert
from ..datalog.rules import Condition
from ..errors import EvaluationError, NonInvertibleError

__all__ = [
    "CONDITION_REPAIRS",
    "register_condition_repair",
    "repair_condition",
    "widen_prefix",
]

# Builtin name -> fn(arg_values, repairable_positions) -> (index, value)
CONDITION_REPAIRS: Dict[str, Callable] = {}


def register_condition_repair(name: str, fn: Callable) -> None:
    """Register a repair strategy for a boolean builtin condition."""
    CONDITION_REPAIRS[name] = fn


def widen_prefix(pfx: Prefix, addr: IPv4Address) -> Prefix:
    """The longest prefix that covers both ``pfx`` and ``addr``.

    This is the minimal generalization: shorten the mask just enough to
    include the new address.
    """
    if pfx.contains(addr):
        return pfx
    diff = pfx.network.value ^ addr.value
    common = 32 - diff.bit_length()
    length = min(pfx.length, common)
    return Prefix(addr, length)


def _repair_ip_in_prefix(args, repairable_positions):
    if 1 not in repairable_positions:
        return None
    addr = IPv4Address(args[0])
    pfx = Prefix(args[1])
    return 1, widen_prefix(pfx, addr)


register_condition_repair("ip_in_prefix", _repair_ip_in_prefix)


def repair_condition(
    condition: Condition,
    env: Dict[str, object],
    repairable_vars: Iterable[str],
    enable_inversion: bool = True,
) -> Optional[PyTuple[str, object]]:
    """Compute ``(variable, new_value)`` making ``condition`` hold.

    ``env`` is the bad-side binding under which the condition currently
    fails; ``repairable_vars`` are the variables bound to fields of
    mutable base tuples (only those may change).  Returns None when the
    condition offers nothing to repair; raises
    :class:`NonInvertibleError` when a repair exists in principle but
    the computation cannot be inverted.
    """
    repairable = set(repairable_vars)
    call = _as_boolean_call(condition)
    if call is not None:
        return _repair_call(call, env, repairable)
    if condition.op == "call" or condition.right is None:
        return None
    return _repair_comparison(condition, env, repairable, enable_inversion)


def _as_boolean_call(condition: Condition) -> Optional[Call]:
    """Normalize ``f(...)``, ``f(...) == true``, ``true == f(...)``."""
    if condition.op == "call" and isinstance(condition.left, Call):
        return condition.left
    if condition.op == "==":
        left, right = condition.left, condition.right
        if isinstance(left, Call) and right == Const(True):
            return left
        if isinstance(right, Call) and left == Const(True):
            return right
    return None


def _repair_call(call: Call, env, repairable) -> Optional[PyTuple[str, object]]:
    strategy = CONDITION_REPAIRS.get(call.name)
    if strategy is None:
        raise NonInvertibleError(
            f"no repair strategy for builtin condition {call.name!r}",
            attempted=(call, env),
        )
    positions = set()
    var_at: Dict[int, str] = {}
    for index, arg in enumerate(call.args):
        if isinstance(arg, Var) and arg.name in repairable:
            positions.add(index)
            var_at[index] = arg.name
    if not positions:
        return None
    values = [arg.evaluate(env) for arg in call.args]
    result = strategy(values, positions)
    if result is None:
        return None
    index, value = result
    return var_at[index], value


def _repair_comparison(
    condition: Condition, env, repairable, enable_inversion
) -> Optional[PyTuple[str, object]]:
    for side, other in (
        (condition.left, condition.right),
        (condition.right, condition.left),
    ):
        candidates = [v for v in side.variables() if v in repairable]
        if len(candidates) != 1:
            continue
        var = candidates[0]
        if other.variables() - env.keys():
            continue
        if not enable_inversion:
            raise NonInvertibleError(
                f"inversion disabled; cannot repair {condition}",
                attempted=(condition, env),
            )
        target = Const(other.evaluate(env))
        solutions = invert(side, var, target)
        for solution in solutions:
            try:
                trial = dict(env)
                trial.pop(var, None)
                value = solution.evaluate(trial)
            except EvaluationError:
                continue
            trial[var] = value
            try:
                if condition.holds(trial):
                    return var, value
            except EvaluationError:
                continue
    return None
