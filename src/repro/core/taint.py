"""Taint tracking: CREATETAINT / PROPTAINT / APPLYTAINT (Section 4.3).

DiffProv taints every field of the good tree that was computed —
directly or indirectly — from fields of the good seed, and attaches to
each tainted field a *formula* expressing its value as a function of
the seed's fields.  Plugging the bad seed's values into a formula gives
the tuple that *should* exist in the bad tree (APPLYTAINT), which is
the equivalence relation the whole alignment runs on.

Formulas are ordinary :mod:`repro.datalog.expr` expressions over the
variables ``$0, $1, ...`` (field ``i`` of the seed).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..datalog.expr import Const, Expr, Var
from ..datalog.rules import AggSpec, Program, Rule
from ..errors import ReproError
from ..provenance.tree import TupleNode

__all__ = ["seed_var", "seed_env", "TaintAnnotation"]


def _tree_nodes(root: TupleNode) -> List[TupleNode]:
    """All nodes of a tree in a deterministic (preorder) traversal.

    Used to translate node-identity keys to positional keys across
    pickling; the only requirement is that the order is a pure function
    of the tree shape.
    """
    order: List[TupleNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)
    return order


def seed_var(index: int) -> Var:
    """The formula variable standing for seed field ``index``."""
    return Var(f"${index}")


def seed_env(seed_tuple) -> Dict[str, object]:
    """Evaluation environment binding ``$i`` to a seed's field values."""
    return {f"${i}": value for i, value in enumerate(seed_tuple.args)}


class TaintAnnotation:
    """Field formulas for every node of a good provenance tree.

    Built in one bottom-up pass (CREATETAINT on the seed, then
    PROPTAINT through each derivation).  For each node the annotation
    stores one formula per field (``None`` = untainted, i.e. the field
    does not depend on the seed), and for each *derived* node the
    per-variable formulas of its rule binding, which MAKEAPPEAR uses to
    compute expected sibling tuples (Section 4.5).
    """

    def __init__(
        self,
        program: Program,
        root: TupleNode,
        seed: TupleNode,
        enabled: bool = True,
    ):
        self.program = program
        self.root = root
        self.seed = seed
        self.enabled = enabled
        self._field_formulas: Dict[int, List[Optional[Expr]]] = {}
        self._var_formulas: Dict[int, Dict[str, Expr]] = {}
        self._annotate(root)

    # -- pickling ------------------------------------------------------------
    #
    # The formula tables are keyed by node identity (id()), which does
    # not survive pickling.  For transport to candidate-evaluator
    # workers the keys are remapped to deterministic tree-traversal
    # indices and back; node identity within one pickle payload is
    # preserved by the pickle memo, so a worker that receives the
    # annotation together with the tree (and any paths into it) sees
    # consistent lookups.

    def __getstate__(self):
        state = self.__dict__.copy()
        index_of = {
            id(node): index
            for index, node in enumerate(_tree_nodes(self.root))
        }
        state["_field_formulas"] = {
            index_of[key]: value
            for key, value in self._field_formulas.items()
            if key in index_of
        }
        state["_var_formulas"] = {
            index_of[key]: value
            for key, value in self._var_formulas.items()
            if key in index_of
        }
        return state

    def __setstate__(self, state):
        field_by_index = state.pop("_field_formulas")
        var_by_index = state.pop("_var_formulas")
        self.__dict__.update(state)
        nodes = _tree_nodes(self.root)
        self._field_formulas = {
            id(nodes[index]): value for index, value in field_by_index.items()
        }
        self._var_formulas = {
            id(nodes[index]): value for index, value in var_by_index.items()
        }

    # -- public accessors ---------------------------------------------------

    def formulas_for(self, node: TupleNode) -> List[Optional[Expr]]:
        try:
            return self._field_formulas[id(node)]
        except KeyError:
            raise ReproError(
                f"node {node.tuple} is not part of the annotated tree"
            ) from None

    def var_formulas_for(self, node: TupleNode) -> Dict[str, Expr]:
        return self._var_formulas.get(id(node), {})

    def is_tainted(self, node: TupleNode) -> bool:
        return any(f is not None for f in self.formulas_for(node))

    # -- construction ----------------------------------------------------------

    def _annotate(self, node: TupleNode) -> List[Optional[Expr]]:
        for child in node.children:
            self._annotate(child)
        formulas = self._formulas_of(node)
        self._field_formulas[id(node)] = formulas
        return formulas

    def _formulas_of(self, node: TupleNode) -> List[Optional[Expr]]:
        arity = node.tuple.arity
        if not self.enabled:
            return [None] * arity
        if node.is_base:
            # CREATETAINT: each seed field is tainted with the identity.
            # The projection from graph to tree duplicates shared
            # subtrees, so the seed *tuple* can occur at many tree
            # positions; every occurrence is the seed.
            if node.tuple == self.seed.tuple:
                return [seed_var(i) for i in range(arity)]
            return [None] * arity
        rule = self._rule_of(node)
        if rule is None:
            return [None] * arity
        if rule.is_aggregate:
            return self._aggregate_formulas(rule, node)
        var_formulas = self._bind_variables(rule, node)
        self._var_formulas[id(node)] = var_formulas
        env = node.derivation.env if node.derivation is not None else {}
        self._apply_assignments(rule, env, var_formulas)
        return [
            self._head_formula(arg, env, var_formulas) for arg in rule.head.args
        ]

    def _aggregate_formulas(self, rule: Rule, node: TupleNode) -> List[Optional[Expr]]:
        """Taints for aggregate heads: group-key fields inherit their
        contributions' formulas; the aggregated values themselves
        (counts, sums) are set-level facts, not functions of the seed,
        and stay untainted."""
        var_formulas: Dict[str, Expr] = {}
        for child in node.children:
            child_formulas = self._field_formulas.get(id(child))
            if child_formulas is None:
                continue
            for atom in rule.body:
                if atom.table != child.tuple.table or atom.arity != child.tuple.arity:
                    continue
                for index, arg in enumerate(atom.args):
                    formula = child_formulas[index]
                    if (
                        formula is not None
                        and isinstance(arg, Var)
                        and arg.name not in var_formulas
                    ):
                        var_formulas[arg.name] = formula
                break
        self._var_formulas[id(node)] = var_formulas
        env = node.derivation.env if node.derivation is not None else {}
        return [
            None if isinstance(arg, AggSpec)
            else self._head_formula(arg, env, var_formulas)
            for arg in rule.head.args
        ]

    def _rule_of(self, node: TupleNode) -> Optional[Rule]:
        if node.rule is None:
            return None
        try:
            return self.program.rule(node.rule)
        except Exception:
            return None

    def _bind_variables(self, rule: Rule, node: TupleNode) -> Dict[str, Expr]:
        """PROPTAINT: taints flow from child fields to rule variables."""
        var_formulas: Dict[str, Expr] = {}
        for atom, child in zip(rule.body, node.children):
            child_formulas = self._field_formulas.get(id(child))
            if child_formulas is None:
                continue
            for index, arg in enumerate(atom.args):
                if index >= len(child_formulas):
                    break
                formula = child_formulas[index]
                if formula is None:
                    continue
                if isinstance(arg, Var) and arg.name not in var_formulas:
                    var_formulas[arg.name] = formula
        return var_formulas

    def _apply_assignments(
        self, rule: Rule, env: Dict[str, object], var_formulas: Dict[str, Expr]
    ) -> None:
        """Taints flow through assignments, composing their formulas."""
        for assignment in rule.assignments:
            used = assignment.expr.variables()
            if not (used & var_formulas.keys()):
                continue
            mapping = self._substitution(used, env, var_formulas)
            if mapping is None:
                continue
            var_formulas[assignment.var] = assignment.expr.substitute(mapping)

    def _head_formula(
        self, arg, env: Dict[str, object], var_formulas: Dict[str, Expr]
    ) -> Optional[Expr]:
        if isinstance(arg, AggSpec) or not isinstance(arg, Expr):
            return None
        used = arg.variables()
        if not (used & var_formulas.keys()):
            return None
        mapping = self._substitution(used, env, var_formulas)
        if mapping is None:
            return None
        return arg.substitute(mapping)

    def _substitution(
        self, used, env: Dict[str, object], var_formulas: Dict[str, Expr]
    ) -> Optional[Dict[str, Expr]]:
        """Tainted vars become their formulas; untainted vars become the
        good run's constants (APPLYTAINT plugs the bad seed in later)."""
        mapping: Dict[str, Expr] = {}
        for name in used:
            if name in var_formulas:
                mapping[name] = var_formulas[name]
            elif name in env:
                mapping[name] = Const(env[name])
            else:
                return None
        return mapping
