"""DiffProv: differential provenance (the paper's contribution).

Given a "bad" event and a similar "good" reference event, DiffProv
aligns their provenance trees and returns the set of mutable base-tuple
changes Δ(B→G) that makes the bad execution behave like the good one —
usually a single broken flow entry or configuration value.

Public entry point::

    from repro.core import DiffProv

    debugger = DiffProv(program)
    report = debugger.diagnose(good_exec, bad_exec, good_event, bad_event)
    print(report.summary())
"""

from .diffprov import DiffProv, DiffProvOptions
from .report import DiagnosisReport, RoundInfo
from .seeds import find_seed
from .taint import TaintAnnotation
from .equivalence import EquivalenceRelation

__all__ = [
    "DiffProv",
    "DiffProvOptions",
    "DiagnosisReport",
    "RoundInfo",
    "find_seed",
    "TaintAnnotation",
    "EquivalenceRelation",
]
