"""The equivalence relation between good-tree and bad-tree tuples.

Two tuples are equivalent when the bad-side tuple matches what
APPLYTAINT predicts from the good-side tuple: tainted fields evaluate
their formulas under the *bad* seed, untainted fields must match the
good run literally (Sections 3.3 and 4.3).

Repairs made by MAKEAPPEAR (e.g. widening an overly specific prefix)
are recorded as *overrides*, so the repaired tuple is treated as the
equivalent counterpart of the good tuple from then on.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..datalog.tuples import Tuple
from ..errors import EvaluationError
from ..provenance.tree import TupleNode
from .taint import TaintAnnotation, seed_env

__all__ = ["EquivalenceRelation"]


class EquivalenceRelation:
    """Maps good-tree nodes to their expected bad-side tuples."""

    def __init__(self, annotation: TaintAnnotation, bad_seed_tuple: Tuple):
        self.annotation = annotation
        self.bad_seed_tuple = bad_seed_tuple
        self.seed_env = seed_env(bad_seed_tuple)
        # Repairs: good tuple -> the bad-side tuple that stands in for it.
        self.overrides: Dict[Tuple, Tuple] = {}
        # Field rewrites: (table, field index, old value) -> new value.
        # A condition repair changes a *base* value (e.g. a policy's
        # prefix); every tuple that carries the old value in that slot —
        # all the flow entries compiled from the policy — must be
        # expected with the repaired value.
        self.field_rewrites: Dict[tuple, object] = {}

    # -- expected tuples -----------------------------------------------------

    def expected_tuple(self, node: TupleNode) -> Tuple:
        """APPLYTAINT: the bad-side counterpart of a good-tree node."""
        override = self.overrides.get(node.tuple)
        if override is not None:
            return override
        formulas = self.annotation.formulas_for(node)
        args = []
        table = node.tuple.table
        for index, (value, formula) in enumerate(
            zip(node.tuple.args, formulas)
        ):
            if formula is not None:
                value = formula.evaluate(self.seed_env)
            if self.field_rewrites:
                value = self.field_rewrites.get((table, index, value), value)
            args.append(value)
        return Tuple(table, args)

    def add_override(self, good_tuple: Tuple, replacement: Tuple) -> None:
        self.overrides[good_tuple] = replacement

    def add_field_rewrite(self, table: str, index: int, old, new) -> None:
        """Register a repair of one field value across the whole tree."""
        if old != new:
            self.field_rewrites[(table, index, old)] = new

    # -- equivalence checks ----------------------------------------------------

    def tuples_equivalent(self, node: TupleNode, candidate: Tuple) -> bool:
        if node.tuple.table != candidate.table:
            return False
        if node.tuple.arity != candidate.arity:
            return False
        try:
            return self.expected_tuple(node) == candidate
        except EvaluationError:
            return False

    def subtrees_equivalent(self, good: TupleNode, bad: TupleNode) -> bool:
        """Recursive equivalence of two provenance subtrees.

        Requires equivalent tuples, the same deriving rule, and
        pairwise-equivalent children (children are ordered by the
        rule's body atoms, identically in both trees).
        """
        if not self.tuples_equivalent(good, bad.tuple):
            return False
        if good.rule != bad.rule:
            return False
        if len(good.children) != len(bad.children):
            return False
        return all(
            self.subtrees_equivalent(gc, bc)
            for gc, bc in zip(good.children, bad.children)
        )

    def first_divergence(
        self, good: TupleNode, bad: TupleNode
    ) -> Optional[TupleNode]:
        """The shallowest good-tree node whose bad counterpart diverges.

        Used when the divergence is off the seed path: returns the
        good-tree node to MAKEAPPEAR, or None if the trees are
        equivalent.
        """
        if not self.tuples_equivalent(good, bad.tuple) or good.rule != bad.rule:
            return good
        if len(good.children) != len(bad.children):
            return good
        for gc, bc in zip(good.children, bad.children):
            divergence = self.first_divergence(gc, bc)
            if divergence is not None:
                return divergence
        return None
