"""Stream sources: where the monitor's wire lines come from.

Two sources, one contract — an iterable of checksummed NDJSON lines
plus the Datalog program needed to diagnose them:

* :class:`ScenarioStreamSource` taps the discrete-event emulator: any
  scenario that records a stream during build (``FLAP``/``FLAP-S``)
  becomes a replayable feed, optionally perturbed by the stream-fault
  kinds of a :class:`repro.FaultPlan`.
* :class:`FileStreamSource` replays an NDJSON file written by
  :func:`repro.streaming.events.dump_events` — the "give me yesterday's
  stream" ops path, and the crash-resume path: a resumed monitor
  re-reads the same file and re-ingests deterministically.

Both also know how to map an observed probe outcome to the *event
tuple* DiffProv diagnoses (``delivered(host, pkt, src, dst)`` in the
SDN wire format): the probe carries the packet, the outcome names the
host it landed on.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional

from ..datalog.tuples import Tuple
from ..errors import ReproError
from .events import StreamEvent, encode_event, iter_lines, load_events
from .perturb import perturb_events

__all__ = ["ScenarioStreamSource", "FileStreamSource", "observed_event"]


def observed_event(probe: StreamEvent) -> Tuple:
    """The outcome tuple a probe's observed delivery corresponds to.

    A probe event carries the injected packet ``packet(switch, pkt,
    src, dst)`` and an outcome naming the host it actually landed on;
    the diagnosable event is ``delivered(host, pkt, src, dst)`` — the
    same tuple the engine derives when the window is replayed.
    """
    if probe.kind != "probe" or probe.outcome is None:
        raise ReproError(f"not an observed probe: {probe!r}")
    host = probe.outcome.get("host")
    if not host:
        raise ReproError(f"probe outcome names no host: {probe!r}")
    return Tuple("delivered", (host,) + probe.tuple.args[1:])


class ScenarioStreamSource:
    """The emulator tap: a scenario's recorded stream as wire lines."""

    def __init__(self, scenario, faults=None):
        if not hasattr(scenario, "stream_events"):
            raise ReproError(
                f"scenario {getattr(scenario, 'name', scenario)!r} records "
                f"no stream (no stream_events); streaming scenarios: FLAP, "
                f"FLAP-S"
            )
        self.scenario = scenario
        self.faults = faults

    @classmethod
    def for_name(cls, name: str, faults=None, **params):
        """Build from a scenario registry name (lazy import, no cycle)."""
        from ..scenarios import ALL_SCENARIOS

        if name not in ALL_SCENARIOS:
            raise ReproError(f"unknown scenario {name!r}")
        return cls(ALL_SCENARIOS[name](**params), faults=faults)

    @property
    def program(self):
        self.scenario.setup()
        return self.scenario.program

    def events(self) -> List[StreamEvent]:
        """The delivery sequence (stream faults applied when configured)."""
        events = self.scenario.stream_events()
        plan = self.faults
        if plan is not None and plan.has_stream_faults():
            events = perturb_events(events, plan)
        return events

    def lines(self) -> Iterator[str]:
        return iter_lines(self.events())

    def fingerprint(self) -> str:
        """Identity of the *unperturbed* stream (for journal matching).

        Stream faults are transport noise; a resumed monitor may see a
        differently perturbed feed of the same underlying stream and
        must still match its journal.
        """
        digest = hashlib.sha256()
        for event in self.scenario.stream_events():
            digest.update(encode_event(event).encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def describe(self) -> str:
        return f"scenario:{self.scenario.name}"


class FileStreamSource:
    """Replay of an NDJSON stream file (ops + resume path)."""

    def __init__(self, path: str, program=None):
        self.path = str(path)
        self._program = program

    @property
    def program(self):
        if self._program is None:
            # The SDN wire format is the only on-disk stream format so
            # far; a future multi-program header would land here.
            from ..sdn import model

            self._program = model.sdn_program()
        return self._program

    def events(self) -> List[StreamEvent]:
        return load_events(self.path)

    def lines(self) -> Iterator[str]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if line:
                    yield line

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        for event in self.events():
            digest.update(encode_event(event).encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def describe(self) -> str:
        return f"file:{self.path}"
