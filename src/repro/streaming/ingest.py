"""The hardened ingestion front-end.

Real event streams are hostile: lines arrive torn, duplicated, late,
or not at all.  The :class:`Ingestor` turns that into a clean, totally
ordered sequence of :class:`~repro.streaming.events.StreamEvent` and
:class:`~repro.streaming.events.Gap` markers:

* **Checksum validation** — corrupt lines are counted and discarded
  (:func:`repro.streaming.events.decode_line`), never parsed into
  garbage.
* **Dedup** — an event whose sequence number was already delivered (or
  is already buffered) is absorbed and counted.
* **Reorder buffer + watermark** — the watermark is the next expected
  sequence number; early events wait in a bounded buffer and are
  drained in order the moment the missing predecessors arrive.
* **Gap detection** — when the buffer stretches more than the
  ``lateness`` bound past the watermark, the front-end stops waiting,
  emits a :class:`~repro.streaming.events.Gap` covering the missing
  span, and moves on.  Downstream consumers degrade confidence for
  windows overlapping a gap instead of crashing (docs/streaming.md).

Everything is deterministic in the arrival sequence: the same lines in
the same order always yield the same deliveries, which is what makes
crash-resume byte-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..errors import ReproError
from .events import Gap, StreamEvent, decode_line

__all__ = ["Ingestor", "IngestStats"]

Delivery = Union[StreamEvent, Gap]


class IngestStats:
    """Counters the front-end keeps about the transport's behaviour."""

    __slots__ = ("received", "delivered", "duplicates", "corrupt",
                 "gaps", "lost", "reordered")

    def __init__(self):
        self.received = 0    # well-formed events that arrived
        self.delivered = 0   # events handed downstream, in order
        self.duplicates = 0  # absorbed (already delivered or buffered)
        self.corrupt = 0     # lines that failed checksum/parse
        self.gaps = 0        # spans given up on
        self.lost = 0        # events inside those spans
        self.reordered = 0   # events that had to wait in the buffer

    def to_dict(self) -> Dict[str, int]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        return f"IngestStats({self.to_dict()})"


class Ingestor:
    """Order-restoring, loss-tolerant front-end over a raw event feed.

    ``lateness`` is the reorder tolerance, in events: how far past the
    watermark the stream may run before a missing event is declared
    lost.  It must be at least the transport's maximum displacement
    (:data:`repro.streaming.perturb.MAX_DISPLACEMENT` for the seeded
    perturber) for reordering alone never to produce a gap.
    """

    def __init__(self, lateness: int = 8, telemetry=None):
        if lateness < 1:
            raise ReproError(f"lateness must be >= 1, got {lateness}")
        self.lateness = int(lateness)
        self.telemetry = telemetry
        self.stats = IngestStats()
        self._next_seq = 0
        self._buffer: Dict[int, StreamEvent] = {}

    @property
    def watermark(self) -> int:
        """The next expected sequence number (all below it are settled)."""
        return self._next_seq

    # -- pushing -------------------------------------------------------------

    def push_line(self, line: str) -> List[Delivery]:
        """Ingest one wire line; corrupt lines count and deliver nothing."""
        event = decode_line(line)
        if event is None:
            self.stats.corrupt += 1
            self._count("streaming.ingest.corrupt")
            return []
        return self.push(event)

    def push(self, event: StreamEvent) -> List[Delivery]:
        """Ingest one event; returns in-order deliveries it unlocked."""
        self.stats.received += 1
        seq = event.seq
        if seq < self._next_seq or seq in self._buffer:
            self.stats.duplicates += 1
            self._count("streaming.ingest.duplicates")
            return []
        if seq > self._next_seq:
            self.stats.reordered += 1
        self._buffer[seq] = event
        return self._drain()

    def flush(self) -> List[Delivery]:
        """End of stream: deliver everything still buffered, gaps and all."""
        out: List[Delivery] = []
        while self._buffer:
            first_buffered = min(self._buffer)
            if first_buffered > self._next_seq:
                out.append(self._give_up(first_buffered))
            # _give_up advanced the watermark onto a buffered event, so
            # every iteration delivers at least one event: termination.
            out.extend(self._drain())
        return out

    def run(self, lines: Iterable[str]) -> Iterable[Delivery]:
        """Ingest a whole wire stream, flushing at the end."""
        for line in lines:
            for delivery in self.push_line(line):
                yield delivery
        for delivery in self.flush():
            yield delivery

    # -- internals -----------------------------------------------------------

    def _drain(self) -> List[Delivery]:
        out: List[Delivery] = []
        while True:
            while self._next_seq in self._buffer:
                out.append(self._buffer.pop(self._next_seq))
                self.stats.delivered += 1
                self._next_seq += 1
            if not self._buffer:
                break
            # The watermark is stuck on a missing event.  Wait while the
            # stream is within the lateness bound; beyond it, the event
            # is declared lost and the hole becomes an explicit Gap.
            horizon = max(self._buffer)
            if horizon - self._next_seq < self.lateness:
                break
            out.append(self._give_up(min(self._buffer)))
        return out

    def _give_up(self, first_buffered: int) -> Gap:
        gap = Gap(self._next_seq, first_buffered - 1)
        self.stats.gaps += 1
        self.stats.lost += gap.lost
        self._count("streaming.ingest.gaps")
        self._count("streaming.ingest.lost", gap.lost)
        self._next_seq = first_buffered
        return gap

    def _count(self, name: str, value: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.inc(name, value)
