"""The continuous monitor: detect, pick a reference, run DiffProv.

:class:`StreamMonitor` wires the streaming pieces into the paper's
pipeline, run per detection instead of per operator request:

1. wire lines → :class:`~repro.streaming.ingest.Ingestor` (dedup,
   reorder buffer, watermark, gaps);
2. deliveries → :class:`~repro.streaming.window.StreamWindow`
   (bounded state, provenance GC);
3. probes → :class:`~repro.streaming.detect.QualityDetector`; an
   opened incident enters a *bounded* pending queue — when diagnosis
   falls behind ingest the oldest incident is shed as a typed record
   instead of stalling the stream;
4. per incident: materialize the window, auto-select the good
   reference (:func:`repro.core.autoref.propose_stream_references`),
   diagnose under the per-incident deadline budget, and emit one
   record.  Windows overlapping a gap emit reduced-confidence records
   listing the unknown spans.

Every emitted record is journaled through
:class:`repro.resilience.DiagnosisJournal` *before* it is surfaced, so
a SIGKILL'd monitor resumed over the same stream re-emits the already
-diagnosed records from the journal (skipping their replays) and
continues — the full record sequence is byte-identical to an
uninterrupted run (docs/streaming.md).

Records carry no wall-clock content; determinism is the contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.autoref import propose_stream_references
from ..core.diffprov import DiffProv, DiffProvOptions
from ..errors import ReproError
from ..resilience.deadline import Deadline
from .detect import QualityDetector, quality_score
from .events import Gap, StreamEvent
from .ingest import Ingestor
from .source import observed_event
from .window import StreamWindow

__all__ = ["StreamMonitor", "MonitorSummary"]


class MonitorSummary:
    """End-of-run roll-up: what the monitor saw and what it did."""

    __slots__ = ("ingest", "incidents", "diagnoses", "degraded", "shed",
                 "resumed_records", "peak_live", "expired_events",
                 "watermark")

    def __init__(self, **fields):
        for slot in self.__slots__:
            setattr(self, slot, fields.get(slot))

    def to_dict(self) -> Dict[str, object]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        return f"MonitorSummary({self.to_dict()})"


class StreamMonitor:
    """Watch one stream source; emit one record per detection.

    ``capacity`` bounds the window (events), ``lateness`` bounds the
    ingest reorder tolerance, ``max_pending`` bounds the queue of
    detections awaiting diagnosis (overflow sheds the oldest), and
    ``diagnose_every`` defers diagnosis to every Nth delivery — the
    pacing knob that makes backpressure reachable in tests.
    ``deadline_s`` is the per-incident diagnosis budget; an expired
    budget degrades that record rather than crashing the monitor.
    """

    def __init__(
        self,
        source,
        *,
        capacity: int = 24,
        lateness: int = 8,
        engine=None,
        minimize: bool = False,
        repair: bool = False,
        deadline_s: Optional[float] = None,
        max_pending: int = 8,
        diagnose_every: int = 1,
        reference_limit: int = 5,
        journal=None,
        telemetry=None,
        detector: Optional[QualityDetector] = None,
    ):
        self.source = source
        self.telemetry = telemetry
        self.journal = journal
        self.minimize = bool(minimize)
        # Per-incident rollback planning (docs/repair.md): incident
        # records' embedded reports gain a "repair" section.
        self.repair = bool(repair)
        self.deadline_s = deadline_s
        self.max_pending = int(max_pending)
        self.diagnose_every = max(1, int(diagnose_every))
        self.reference_limit = int(reference_limit)
        self.engine = engine
        self.ingestor = Ingestor(lateness=lateness, telemetry=telemetry)
        self.window = StreamWindow(
            source.program, capacity=capacity, engine=engine,
            telemetry=telemetry,
        )
        self.detector = detector or QualityDetector()
        self.records: List[dict] = []
        self.resumed_records = 0
        self.shed_count = 0
        self.degraded_count = 0
        self.diagnosis_count = 0
        self._pending: List[tuple] = []  # (incident, first bad probe)
        self._deliveries = 0

    # -- the run loop --------------------------------------------------------

    def run(self) -> List[dict]:
        """Consume the whole source; returns the emitted records.

        The drain check runs per *delivery*, not per wire line: a
        reordered line can unlock a whole batch of buffered deliveries
        at once, and diagnosing only after the batch would let the
        window's right edge depend on transport batching — breaking
        the guarantee that a stream reordered within the lateness
        bound diagnoses byte-identically to the in-order stream.
        """
        for line in self.source.lines():
            for delivery in self.ingestor.push_line(line):
                self._deliver(delivery)
                if self._deliveries % self.diagnose_every == 0:
                    self._drain_pending()
        for delivery in self.ingestor.flush():
            self._deliver(delivery)
            if self._deliveries % self.diagnose_every == 0:
                self._drain_pending()
        self._drain_pending()
        return self.records

    def _deliver(self, delivery) -> None:
        self._deliveries += 1
        self.window.push(delivery)
        if isinstance(delivery, StreamEvent) and delivery.kind == "probe":
            incident = self.detector.observe(delivery)
            if incident is not None:
                self._count("streaming.monitor.incidents")
                self._enqueue(incident, delivery)

    def _enqueue(self, incident, probe) -> None:
        if len(self._pending) >= self.max_pending:
            shed_incident, shed_probe = self._pending.pop(0)
            self._emit({
                "kind": "shed",
                "incident": shed_incident.key,
                "probe_seqs": list(shed_incident.probe_seqs),
                "bad_event": str(observed_event(shed_probe)),
                "reason": "backpressure",
            })
            self.shed_count += 1
            self._count("streaming.monitor.shed")
        self._pending.append((incident, probe))

    def _drain_pending(self) -> None:
        while self._pending:
            incident, probe = self._pending.pop(0)
            self._process(incident, probe)

    # -- one incident --------------------------------------------------------

    def _process(self, incident, probe) -> None:
        journaled = None
        if self.journal is not None:
            journaled = self.journal.lookup("monitor", incident.key)
        if journaled is not None:
            # A previous (killed) run already diagnosed this incident;
            # re-emit its record verbatim instead of replaying.
            self.resumed_records += 1
            self._count("streaming.monitor.resumed")
            self.records.append(journaled)
            return
        record = self._diagnose(incident, probe)
        self._emit(record)

    def _diagnose(self, incident, probe) -> dict:
        self.diagnosis_count += 1
        self._count("streaming.monitor.diagnoses")
        bad_event = observed_event(probe)
        window = self.window
        score = quality_score(window.probes())
        unknown = window.unknown_spans()
        record = {
            "kind": "diagnosis",
            "incident": incident.key,
            "probe_seqs": list(incident.probe_seqs),
            "reasons": list(incident.reasons),
            "window": list(window.span() or ()),
            "bad_event": str(bad_event),
            "reference": None,
            "confidence": "uncertain" if window.gapped else "confirmed",
            "unknown": unknown,
            "quality": score.to_dict() if score is not None else None,
            "report": None,
        }
        execution = window.materialize(name=f"window-{incident.key}")
        healthy = []
        for candidate_probe in window.probes():
            if candidate_probe.ok:
                healthy.append(observed_event(candidate_probe))
        candidates = propose_stream_references(
            execution.graph, bad_event, healthy, limit=self.reference_limit
        )
        if not candidates:
            record["degraded"] = "no-reference"
            self.degraded_count += 1
            self._count("streaming.monitor.degraded")
            return record
        deadline = Deadline.of(self.deadline_s)
        options = DiffProvOptions(
            minimize=self.minimize,
            repair=self.repair,
            telemetry=self.telemetry,
            deadline=deadline,
        )
        debugger = DiffProv(self.source.program, options)
        mismatch = False
        for candidate in candidates:
            if deadline is not None and deadline.expired:
                break
            try:
                report = debugger.diagnose(
                    execution, execution, candidate.event, bad_event
                )
            except ReproError:
                # The observed outcome cannot be derived from the
                # window replay — a config change was lost in a gap, or
                # the window advanced past the failure before a
                # deferred diagnosis ran.  Evidence disagreeing with
                # replay degrades the record; it never kills the
                # monitor.
                mismatch = True
                continue
            if report.success and report.num_changes > 0:
                record["reference"] = str(candidate.event)
                record["report"] = report.canonical_dict()
                if report.degraded:
                    record["confidence"] = "uncertain"
                    for tup in report.unknown_subtrees:
                        text = str(tup)
                        if text not in record["unknown"]:
                            record["unknown"].append(text)
                return record
        if deadline is not None and deadline.expired:
            record["degraded"] = "deadline-exceeded"
        elif mismatch:
            record["degraded"] = "evidence-mismatch"
        else:
            record["degraded"] = "no-aligned-reference"
        record["confidence"] = "uncertain"
        self.degraded_count += 1
        self._count("streaming.monitor.degraded")
        return record

    # -- emission ------------------------------------------------------------

    def _emit(self, record: dict) -> None:
        if self.journal is not None:
            key = record.get("incident") or f"record-{len(self.records)}"
            if record.get("kind") == "shed":
                key = f"shed:{key}"
            # Write-ahead: the record is durable before it is surfaced,
            # so resume can re-emit exactly what an observer saw.
            self.journal.record("monitor", key, record)
        self.records.append(record)

    def summary(self) -> MonitorSummary:
        return MonitorSummary(
            ingest=self.ingestor.stats.to_dict(),
            incidents=len(self.detector.incidents),
            diagnoses=self.diagnosis_count,
            degraded=self.degraded_count,
            shed=self.shed_count,
            resumed_records=self.resumed_records,
            peak_live=self.window.peak_live,
            expired_events=self.window.expired_events,
            watermark=self.ingestor.watermark,
        )

    def _count(self, name: str, value: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.inc(name, value)
