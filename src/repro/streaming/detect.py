"""NetInsight-style quality scoring and bad-event detection.

Each window of probes gets a :class:`QualityScore` — success rate and
latency percentiles — and the :class:`QualityDetector` watches the
probe feed for statistically bad events: a probe whose observed
outcome is unhealthy, or whose latency is an extreme outlier against
the healthy baseline, opens an :class:`Incident`.  Consecutive bad
probes extend the open incident instead of opening new ones, so one
down-phase of a flapping route yields exactly one incident — the unit
the monitor diagnoses.

Detection is purely a function of the delivered probe sequence, so a
resumed monitor re-detects the identical incident sequence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .events import StreamEvent

__all__ = ["QualityScore", "Incident", "QualityDetector", "quality_score"]


class QualityScore:
    """Per-window service quality: success rate + latency statistics."""

    __slots__ = ("probes", "successes", "success_rate", "latency_p50",
                 "latency_p95")

    def __init__(self, probes, successes, success_rate, latency_p50,
                 latency_p95):
        self.probes = probes
        self.successes = successes
        self.success_rate = success_rate
        self.latency_p50 = latency_p50
        self.latency_p95 = latency_p95

    def to_dict(self) -> Dict[str, object]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        return (f"QualityScore(success={self.success_rate:.3f}, "
                f"p50={self.latency_p50}ms, p95={self.latency_p95}ms)")


def _percentile(values: Sequence[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def quality_score(probes: Sequence[StreamEvent]) -> Optional[QualityScore]:
    """Score a window's probes; None when the window has none."""
    latencies = []
    successes = 0
    total = 0
    for probe in probes:
        if probe.outcome is None:
            continue
        total += 1
        if probe.ok:
            successes += 1
        latency = probe.outcome.get("latency_ms")
        if isinstance(latency, (int, float)):
            latencies.append(float(latency))
    if not total:
        return None
    return QualityScore(
        probes=total,
        successes=successes,
        success_rate=round(successes / total, 6),
        latency_p50=round(_percentile(latencies, 0.50), 3) if latencies else None,
        latency_p95=round(_percentile(latencies, 0.95), 3) if latencies else None,
    )


class Incident:
    """One contiguous run of bad probes (e.g. one down-phase)."""

    __slots__ = ("key", "first_seq", "probe_seqs", "reasons")

    def __init__(self, key: str, first_seq: int):
        self.key = key
        self.first_seq = first_seq
        self.probe_seqs: List[int] = []
        self.reasons: List[str] = []

    def extend(self, probe: StreamEvent, reason: str) -> None:
        self.probe_seqs.append(probe.seq)
        if reason not in self.reasons:
            self.reasons.append(reason)

    def __repr__(self):
        return f"Incident({self.key}, probes={self.probe_seqs})"


class QualityDetector:
    """Flags statistically bad probes and groups them into incidents.

    A probe is bad when its outcome reports unhealthy (``ok`` false),
    or when its latency exceeds ``latency_factor`` times the healthy
    median seen so far (the NetInsight "much slower than usual"
    signal).  The first bad probe after a healthy one *opens* an
    incident — returned to the caller, which is the monitor's trigger
    to diagnose — and the incident stays open until a healthy probe
    closes it.
    """

    def __init__(self, latency_factor: float = 3.0, min_baseline: int = 3):
        self.latency_factor = float(latency_factor)
        self.min_baseline = int(min_baseline)
        self._healthy_latencies: List[float] = []
        self._open: Optional[Incident] = None
        self.incidents: List[Incident] = []

    def observe(self, probe: StreamEvent) -> Optional[Incident]:
        """Feed one delivered probe; returns a newly *opened* incident."""
        if probe.kind != "probe" or probe.outcome is None:
            return None
        reason = self._badness(probe)
        if reason is None:
            latency = probe.outcome.get("latency_ms")
            if isinstance(latency, (int, float)):
                self._healthy_latencies.append(float(latency))
                # The baseline is a sliding sample too — O(1) memory.
                if len(self._healthy_latencies) > 64:
                    del self._healthy_latencies[0]
            self._open = None
            return None
        opened = None
        if self._open is None:
            self._open = Incident(f"incident-seq{probe.seq}", probe.seq)
            self.incidents.append(self._open)
            opened = self._open
        self._open.extend(probe, reason)
        return opened

    def _badness(self, probe: StreamEvent) -> Optional[str]:
        if not probe.ok:
            return "unhealthy"
        latency = probe.outcome.get("latency_ms")
        if (
            isinstance(latency, (int, float))
            and len(self._healthy_latencies) >= self.min_baseline
        ):
            baseline = _percentile(self._healthy_latencies, 0.50)
            if float(latency) > self.latency_factor * baseline:
                return "latency-outlier"
        return None
