"""Bounded sliding windows with provenance GC.

An offline diagnosis replays the whole log; a monitor that did the
same would hold the entire stream forever.  :class:`StreamWindow`
keeps peak live state O(window), not O(stream):

* The newest ``capacity`` deliveries stay as an explicit event list.
* Older deliveries are *folded into a base snapshot* as they expire:
  a configuration insert/delete updates the base's membership (the set
  of tuples alive at the window's left edge, in first-insertion
  order), and expired probes are discarded outright — their packets
  can no longer be diagnosed, so their provenance is garbage.
* A :class:`~repro.streaming.events.Gap` inside the window marks its
  span as unknown; once a gap expires into the base, the base itself
  is suspect (a config change may have been lost), and the window
  stays degraded — conservative, and explicit in every report.

``materialize()`` rebuilds a fresh :class:`~repro.replay.execution`
from base + events; because both the base fold and the event list are
deterministic functions of the delivery sequence, two materializations
of the same window are identical — the foundation of the monitor's
byte-identical offline/online and crash-resume guarantees.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Optional, Tuple as PyTuple, Union

from ..datalog.tuples import Tuple
from ..replay.execution import Execution
from .events import Gap, StreamEvent

__all__ = ["StreamWindow"]

Delivery = Union[StreamEvent, Gap]


class StreamWindow:
    """A bounded sliding window over the delivered stream."""

    def __init__(self, program, capacity: int = 24, engine=None,
                 telemetry=None):
        self.program = program
        self.capacity = int(capacity)
        self.engine = engine
        self.telemetry = telemetry
        # Tuples alive at the left edge, in first-insertion order, each
        # mapped to its mutability flag.
        self._base: "OrderedDict[Tuple, bool]" = OrderedDict()
        self._events: Deque[StreamEvent] = deque()
        self._gaps: Deque[Gap] = deque()
        self.base_suspect = False
        # High-water mark of live tuples+events (the O(window) claim).
        self.peak_live = 0
        self.expired_events = 0

    # -- sliding -------------------------------------------------------------

    def push(self, delivery: Delivery) -> None:
        """Admit one delivery, expiring the oldest beyond capacity."""
        if isinstance(delivery, Gap):
            self._gaps.append(delivery)
        else:
            self._events.append(delivery)
            while len(self._events) > self.capacity:
                self._expire(self._events.popleft())
        self.peak_live = max(self.peak_live, self.live_size)
        if self.telemetry is not None:
            self.telemetry.set_max("streaming.window.peak_live",
                                   self.peak_live)

    def _expire(self, event: StreamEvent) -> None:
        """Fold one expired event into the base snapshot."""
        self.expired_events += 1
        # Gaps older than the expiring event leave the window with it;
        # a gap that was never resolved taints the base for good.
        while self._gaps and self._gaps[0].last_seq < event.seq:
            self._gaps.popleft()
            self.base_suspect = True
        if event.kind in ("setup", "insert"):
            self._base[event.tuple] = bool(event.mutable)
            self._base.move_to_end(event.tuple)
        elif event.kind == "delete":
            self._base.pop(event.tuple, None)
        # Probes expire into nothing: their packets are no longer
        # diagnosable, so their provenance is collected.

    # -- inspection ----------------------------------------------------------

    @property
    def live_size(self) -> int:
        return len(self._base) + len(self._events)

    @property
    def events(self) -> List[StreamEvent]:
        return list(self._events)

    def span(self) -> Optional[PyTuple[int, int]]:
        """Sequence span of the in-window events (None while empty)."""
        if not self._events:
            return None
        return (self._events[0].seq, self._events[-1].seq)

    def probes(self) -> List[StreamEvent]:
        return [event for event in self._events if event.kind == "probe"]

    def unknown_spans(self) -> List[str]:
        """Human/report-facing descriptions of everything unknown here."""
        spans = [gap.describe() for gap in self._gaps]
        if self.base_suspect:
            spans.insert(0, "base-state(unresolved gap expired)")
        return spans

    @property
    def gapped(self) -> bool:
        return bool(self._gaps) or self.base_suspect

    # -- materialization -----------------------------------------------------

    def materialize(self, name: str = "window") -> Execution:
        """A fresh execution equivalent to replaying this window.

        Base tuples are inserted first (the left-edge state), then the
        in-window events in delivery order.  Deterministic: the same
        window contents always build the same execution, so a monitor
        diagnosis and an offline diagnosis of the same window are
        byte-identical.
        """
        execution = Execution(self.program, name=name)
        if self.engine is not None:
            execution.engine_config = self.engine
        for tup, mutable in self._base.items():
            execution.insert(tup, mutable=mutable)
        for event in self._events:
            if event.kind in ("setup", "insert", "probe"):
                execution.insert(event.tuple, mutable=bool(event.mutable))
            elif event.kind == "delete":
                execution.delete(event.tuple)
        return execution
