"""Seeded stream-fault injection (the transport between network and monitor).

Applies the ``event-drop`` / ``event-dup`` / ``event-reorder`` /
``clock-skew`` rates of a :class:`repro.FaultPlan` to an in-order event
stream, producing the delivery sequence the ingestion front-end
actually sees.  Like :class:`repro.faults.injector.FaultInjector`, each
fault category draws from its own crc32-seeded PRNG stream, so rates
compose independently and the same plan always perturbs the same
stream the same way.

Reordering is *bounded*: a displaced event arrives at most
``MAX_DISPLACEMENT`` positions late, which keeps a well-configured
ingestion lateness bound (>= MAX_DISPLACEMENT) sufficient to absorb
every reordering without declaring a gap.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence

from ..faults.plan import FaultPlan
from .events import StreamEvent

__all__ = ["perturb_events", "MAX_DISPLACEMENT"]

# Upper bound on how far one reordered event can be displaced.
MAX_DISPLACEMENT = 3

# Clock skew magnitude (seconds): enough to visibly scramble advisory
# timestamps, tiny enough to keep latency statistics near-sane.
_SKEW_S = 0.05


def _rng(plan: FaultPlan, category: str) -> random.Random:
    return random.Random(zlib.crc32(f"stream:{category}:{plan.seed}".encode()))


def perturb_events(
    events: Sequence[StreamEvent], plan: FaultPlan
) -> List[StreamEvent]:
    """The transport's delivery sequence for ``events`` under ``plan``.

    Returns a new list; the input events are never mutated (a skewed
    clock yields a *copy* with the skewed timestamp).  With a zero-rate
    plan the output is the input, element for element.
    """
    if plan is None or not plan.has_stream_faults():
        return list(events)
    drop = _rng(plan, "event-drop")
    dup = _rng(plan, "event-dup")
    reorder = _rng(plan, "event-reorder")
    skew = _rng(plan, "clock-skew")

    # Each surviving occurrence gets a delivery rank; reordered ones are
    # pushed up to MAX_DISPLACEMENT positions later.  The sort is stable,
    # so everything else keeps arrival order.
    ranked = []
    for index, event in enumerate(events):
        if plan.event_drop and drop.random() < plan.event_drop:
            continue
        if plan.clock_skew and skew.random() < plan.clock_skew:
            event = StreamEvent(
                seq=event.seq,
                ts=event.ts + skew.uniform(-_SKEW_S, _SKEW_S),
                kind=event.kind,
                tup=event.tuple,
                mutable=event.mutable,
                outcome=event.outcome,
            )
        occurrences = 1
        if plan.event_dup and dup.random() < plan.event_dup:
            occurrences = 2
        for _ in range(occurrences):
            rank = index
            if plan.event_reorder and reorder.random() < plan.event_reorder:
                rank += reorder.randint(1, MAX_DISPLACEMENT)
            ranked.append((rank, event))
    ranked.sort(key=lambda pair: pair[0])
    return [event for _, event in ranked]
