"""The stream's wire format: typed events on checksummed NDJSON lines.

A monitored network emits a totally ordered sequence of *stream
events*, each carrying a sequence number, a logical timestamp, and one
base-event payload — a configuration insert/delete, or a *probe*
(an immutable packet plus the observed outcome the black-box emulator
reported for it).  The wire encoding is one JSON object per line,
prefixed with the CRC32 checksum frame from
:mod:`repro.resilience.integrity`, so a torn or bit-rotted line is
*detected* by the ingestion front-end rather than parsed into garbage::

    a1b2c3d4 {"kind":"probe","mutable":false,"outcome":{...},"seq":12,...}

Sequence numbers are the stream's ground truth for ordering, loss and
duplication; timestamps are advisory (they feed latency statistics and
may be skewed by faulty clocks — see ``clock-skew`` in
:class:`repro.FaultPlan`).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional

from ..datalog.parser import parse_tuple
from ..datalog.tuples import Tuple
from ..errors import ReproError
from ..resilience.integrity import checksum_line, verify_line

__all__ = ["StreamEvent", "Gap", "encode_event", "decode_line",
           "dump_events", "load_events", "KINDS"]

# setup — pre-stream base state (topology wiring, initial config);
# insert/delete — configuration churn while the stream runs;
# probe — an immutable packet event plus its observed outcome.
KINDS = ("setup", "insert", "delete", "probe")


class StreamEvent:
    """One event of the monitored stream."""

    __slots__ = ("seq", "ts", "kind", "tuple", "mutable", "outcome")

    def __init__(
        self,
        seq: int,
        ts: float,
        kind: str,
        tup: Tuple,
        mutable: Optional[bool] = None,
        outcome: Optional[Dict[str, object]] = None,
    ):
        if kind not in KINDS:
            raise ReproError(f"unknown stream event kind {kind!r}")
        self.seq = int(seq)
        # Microsecond resolution, matching the wire encoding — an event
        # must compare equal to itself after an encode/decode round-trip.
        self.ts = round(float(ts), 6)
        self.kind = kind
        self.tuple = tup
        self.mutable = mutable
        self.outcome = dict(outcome) if outcome is not None else None

    @property
    def ok(self) -> Optional[bool]:
        """A probe's observed health; None for non-probe events."""
        if self.outcome is None:
            return None
        return bool(self.outcome.get("ok"))

    def __eq__(self, other):
        if not isinstance(other, StreamEvent):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.ts == other.ts
            and self.kind == other.kind
            and self.tuple == other.tuple
            and self.mutable == other.mutable
            and self.outcome == other.outcome
        )

    def __repr__(self):
        extra = f", outcome={self.outcome}" if self.outcome else ""
        return f"StreamEvent(#{self.seq} {self.kind} {self.tuple}{extra})"


class Gap:
    """A hole the ingestion front-end gave up waiting on.

    The events in ``[first_seq, last_seq]`` never arrived within the
    lateness bound; downstream consumers treat the span as *unknown*
    stream state and degrade confidence instead of crashing.
    """

    __slots__ = ("first_seq", "last_seq")

    def __init__(self, first_seq: int, last_seq: int):
        self.first_seq = int(first_seq)
        self.last_seq = int(last_seq)

    @property
    def lost(self) -> int:
        return self.last_seq - self.first_seq + 1

    def describe(self) -> str:
        return f"gap(seq={self.first_seq}..{self.last_seq})"

    def __eq__(self, other):
        if not isinstance(other, Gap):
            return NotImplemented
        return (self.first_seq, self.last_seq) == (
            other.first_seq, other.last_seq
        )

    def __repr__(self):
        return f"Gap({self.first_seq}..{self.last_seq})"


def encode_event(event: StreamEvent) -> str:
    """One checksummed NDJSON line (no trailing newline)."""
    payload = {
        "seq": event.seq,
        "ts": event.ts,
        "kind": event.kind,
        "tuple": str(event.tuple),
    }
    if event.mutable is not None:
        payload["mutable"] = event.mutable
    if event.outcome is not None:
        payload["outcome"] = event.outcome
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return checksum_line(text)


def decode_line(line: str) -> Optional[StreamEvent]:
    """Parse one checksummed NDJSON line; None when torn or corrupt.

    Corruption is the *transport's* fault, not the caller's, so it is
    reported by value — the ingestion front-end counts rejected lines
    and degrades instead of raising.
    """
    text = verify_line(line.rstrip("\n"))
    if text is None:
        return None
    try:
        payload = json.loads(text)
    except ValueError:
        return None
    try:
        return StreamEvent(
            seq=payload["seq"],
            ts=payload["ts"],
            kind=payload["kind"],
            tup=parse_tuple(payload["tuple"]),
            mutable=payload.get("mutable"),
            outcome=payload.get("outcome"),
        )
    except (KeyError, TypeError, ReproError):
        return None


def dump_events(events: Iterable[StreamEvent], path: str) -> int:
    """Write a replayable NDJSON stream file; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(encode_event(event) + "\n")
            count += 1
    return count


def load_events(path: str) -> List[StreamEvent]:
    """Load a stream file, silently dropping torn/corrupt lines.

    Mirrors the transport contract: the ingestion front-end downstream
    sees the same gaps it would see live.
    """
    events: List[StreamEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            event = decode_line(line)
            if event is not None:
                events.append(event)
    return events


def iter_lines(events: Iterable[StreamEvent]) -> Iterator[str]:
    """The wire form of a stream, line by line (for in-process taps)."""
    for event in events:
        yield encode_event(event)
