"""Streaming online diagnosis (docs/streaming.md).

Turns the offline good/bad pipeline into a continuous monitor: a
replayable NDJSON event source, a fault-tolerant ingestion front-end
(sequence tracking, watermarks, reorder buffer, dedup, checksummed
lines, gap detection), bounded sliding windows with provenance GC, a
NetInsight-style quality detector, and a monitor that auto-selects the
good reference and runs DiffProv per detection — journaled so a
SIGKILL'd monitor resumes byte-identically.
"""

from .detect import Incident, QualityDetector, QualityScore, quality_score
from .events import (
    Gap,
    StreamEvent,
    decode_line,
    dump_events,
    encode_event,
    load_events,
)
from .ingest import IngestStats, Ingestor
from .monitor import MonitorSummary, StreamMonitor
from .perturb import perturb_events
from .source import FileStreamSource, ScenarioStreamSource, observed_event
from .window import StreamWindow

__all__ = [
    "StreamEvent",
    "Gap",
    "encode_event",
    "decode_line",
    "dump_events",
    "load_events",
    "Ingestor",
    "IngestStats",
    "StreamWindow",
    "QualityDetector",
    "QualityScore",
    "Incident",
    "quality_score",
    "ScenarioStreamSource",
    "FileStreamSource",
    "observed_event",
    "perturb_events",
    "StreamMonitor",
    "MonitorSummary",
]
